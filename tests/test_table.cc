/**
 * @file
 * Tests for the text-table renderer.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

namespace radcrit
{
namespace
{

TEST(TextTableTest, RendersHeaderAndRows)
{
    TextTable t("Title");
    t.setHeader({"a", "bb"});
    t.addRow({"1", "2"});
    std::string out = t.toString();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
    EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(TextTableTest, PadsColumns)
{
    TextTable t;
    t.setHeader({"col", "x"});
    t.addRow({"longvalue", "y"});
    std::string out = t.toString();
    // Header row must be padded to the widest cell.
    auto header_end = out.find('\n');
    auto row_start = out.rfind('\n', out.size() - 2);
    EXPECT_NE(header_end, std::string::npos);
    std::string header = out.substr(0, header_end);
    std::string row = out.substr(row_start + 1);
    EXPECT_EQ(header.find('|'), row.find('|'));
}

TEST(TextTableTest, ShortRowsAllowed)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1"});
    EXPECT_NO_THROW(t.toString());
}

TEST(TextTableTest, SeparatorRendersDashes)
{
    TextTable t;
    t.setHeader({"a"});
    t.addSeparator();
    std::string out = t.toString();
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, EmptyTableRendersNothing)
{
    TextTable t;
    EXPECT_EQ(t.toString(), "");
}

TEST(TextTableTest, NumFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(static_cast<int64_t>(-5)), "-5");
    EXPECT_EQ(TextTable::num(static_cast<uint64_t>(7)), "7");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
}

} // anonymous namespace
} // namespace radcrit
