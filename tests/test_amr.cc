/**
 * @file
 * Tests for the AMR refinement map.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "kernels/amr.hh"

namespace radcrit
{
namespace
{

TEST(AmrTest, FlatFieldNoRefinement)
{
    AmrMap amr(32, 0.5);
    std::vector<double> h(32 * 32, 3.0);
    amr.update(h);
    EXPECT_EQ(amr.refinedCells(), 0u);
    EXPECT_EQ(amr.effectiveCells(), 32u * 32u);
    EXPECT_DOUBLE_EQ(amr.imbalance(), 0.0);
}

TEST(AmrTest, StepEdgeRefines)
{
    AmrMap amr(32, 0.5);
    std::vector<double> h(32 * 32, 1.0);
    for (int64_t r = 0; r < 32; ++r)
        for (int64_t c = 16; c < 32; ++c)
            h[r * 32 + c] = 5.0;
    amr.update(h);
    // Both sides of the discontinuity flag: 2 columns x 32 rows.
    EXPECT_EQ(amr.refinedCells(), 64u);
    EXPECT_EQ(amr.effectiveCells(), 32u * 32u + 3u * 64u);
}

TEST(AmrTest, ThresholdGatesRefinement)
{
    std::vector<double> h(32 * 32, 1.0);
    h[16 * 32 + 16] = 1.4; // gradient 0.4
    AmrMap tight(32, 0.3);
    tight.update(h);
    EXPECT_GT(tight.refinedCells(), 0u);
    AmrMap loose(32, 0.5);
    loose.update(h);
    EXPECT_EQ(loose.refinedCells(), 0u);
}

TEST(AmrTest, LocalizedRefinementIsImbalanced)
{
    // One refined corner tile: most work tiles are near the mean,
    // the refined one deviates — Table I's "imbalanced".
    AmrMap amr(64, 0.5);
    std::vector<double> h(64 * 64, 1.0);
    for (int64_t r = 0; r < 8; ++r)
        for (int64_t c = 0; c < 8; ++c)
            h[r * 64 + c] = 10.0 + static_cast<double>(r + c);
    amr.update(h);
    EXPECT_GT(amr.refinedCells(), 0u);
    EXPECT_GT(amr.imbalance(), 0.0);
}

TEST(AmrTest, FlagsShapeMatchesGrid)
{
    AmrMap amr(16, 0.5);
    EXPECT_EQ(amr.flags().size(), 16u * 16u);
    EXPECT_EQ(amr.n(), 16);
}

TEST(AmrDeathTest, BadConfig)
{
    EXPECT_EXIT(AmrMap(1, 0.5), ::testing::ExitedWithCode(1),
                "grid side");
    EXPECT_EXIT(AmrMap(8, 0.0), ::testing::ExitedWithCode(1),
                "threshold");
}

TEST(AmrDeathTest, WrongFieldSizePanics)
{
    AmrMap amr(8, 0.5);
    std::vector<double> wrong(10, 1.0);
    EXPECT_DEATH(amr.update(wrong), "expected");
}

} // anonymous namespace
} // namespace radcrit
