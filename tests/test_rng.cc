/**
 * @file
 * Unit and statistical property tests for the xoshiro256** RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

namespace radcrit
{
namespace
{

TEST(RngTest, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next64() == b.next64())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(8);
    for (int i = 0; i < 10000; ++i) {
        int64_t v = rng.uniformRange(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(RngTest, UniformRangeSingleton)
{
    Rng rng(9);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(rng.uniformRange(3, 3), 3);
}

TEST(RngTest, UniformIntCoversAllValues)
{
    Rng rng(10);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.uniformInt(7));
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIntMean)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.uniformInt(100));
    double mean = sum / n;
    EXPECT_NEAR(mean, 49.5, 0.5);
}

TEST(RngTest, BernoulliRate)
{
    Rng rng(12);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
        EXPECT_FALSE(rng.bernoulli(-1.0));
        EXPECT_TRUE(rng.bernoulli(2.0));
    }
}

TEST(RngTest, NormalMoments)
{
    Rng rng(14);
    double sum = 0.0, sumsq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal();
        sum += v;
        sumsq += v * v;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalShifted)
{
    Rng rng(15);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

class PoissonMeanTest : public ::testing::TestWithParam<double>
{
};

TEST_P(PoissonMeanTest, MeanAndVarianceMatch)
{
    double mean = GetParam();
    Rng rng(16 + static_cast<uint64_t>(mean * 10));
    double sum = 0.0, sumsq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        auto v = static_cast<double>(rng.poisson(mean));
        sum += v;
        sumsq += v * v;
    }
    double m = sum / n;
    double var = sumsq / n - m * m;
    double tol = 5.0 * std::sqrt(mean / n) + 0.01;
    EXPECT_NEAR(m, mean, tol);
    // Poisson variance equals its mean.
    EXPECT_NEAR(var, mean, 10.0 * mean / std::sqrt(n) + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.1, 0.5, 2.0, 10.0,
                                           40.0, 100.0));

TEST(RngTest, PoissonZeroMean)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(18);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, SplitStreamsAreIndependentButDeterministic)
{
    Rng a(42), b(42);
    Rng sa = a.split(1);
    Rng sb = b.split(1);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(sa.next64(), sb.next64());

    Rng c(42);
    Rng sc = c.split(2);
    Rng d(42);
    Rng sd = d.split(1);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (sc.next64() == sd.next64())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(RngTest, HashCombineIsDeterministicAndSpread)
{
    EXPECT_EQ(Rng::hashCombine(1, 2), Rng::hashCombine(1, 2));
    EXPECT_NE(Rng::hashCombine(1, 2), Rng::hashCombine(2, 1));
    std::set<uint64_t> seen;
    for (uint64_t i = 0; i < 1000; ++i)
        seen.insert(Rng::hashCombine(i, 0));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(RngTest, SplitMix64Advances)
{
    uint64_t s = 0;
    uint64_t a = splitMix64(s);
    uint64_t b = splitMix64(s);
    EXPECT_NE(a, b);
    EXPECT_NE(s, 0u);
}

} // anonymous namespace
} // namespace radcrit
