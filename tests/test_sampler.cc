/**
 * @file
 * Tests for the strike sampler: weights, resource distribution and
 * outcome modulation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "exec/launch.hh"
#include "sim/sampler.hh"

namespace radcrit
{
namespace
{

WorkloadTraits
uniformTraits(double util = 0.5)
{
    WorkloadTraits t;
    t.name = "toy";
    t.totalThreads = 65536;
    t.blockThreads = 256;
    t.flopsPerThread = 10.0;
    for (size_t i = 0; i < numResourceKinds; ++i)
        t.utilization[i] = util;
    return t;
}

TEST(SamplerTest, WeightsArePositiveAndSum)
{
    DeviceModel d = makeK40();
    KernelLaunch l = buildLaunch(d, uniformTraits());
    StrikeSampler s(d, l);
    double sum = 0.0;
    for (size_t i = 0; i < numResourceKinds; ++i)
        sum += s.weight(static_cast<ResourceKind>(i));
    EXPECT_NEAR(sum, s.totalWeight(), 1e-9 * sum);
    EXPECT_GT(s.totalWeight(), 0.0);
}

TEST(SamplerTest, UnusedResourceNeverStruck)
{
    DeviceModel d = makeK40();
    WorkloadTraits t = uniformTraits();
    t.setUtil(ResourceKind::Sfu, 0.0);
    KernelLaunch l = buildLaunch(d, t);
    StrikeSampler s(d, l);
    EXPECT_DOUBLE_EQ(s.weight(ResourceKind::Sfu), 0.0);
    Rng rng(1);
    for (int i = 0; i < 2000; ++i)
        EXPECT_NE(s.sampleResource(rng), ResourceKind::Sfu);
}

TEST(SamplerTest, SamplingMatchesWeights)
{
    DeviceModel d = makeK40();
    KernelLaunch l = buildLaunch(d, uniformTraits());
    StrikeSampler s(d, l);
    Rng rng(2);
    std::array<uint64_t, numResourceKinds> counts{};
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        counts[static_cast<size_t>(s.sampleResource(rng))]++;
    for (size_t i = 0; i < numResourceKinds; ++i) {
        double expected = s.weight(static_cast<ResourceKind>(i)) /
            s.totalWeight();
        double observed = static_cast<double>(counts[i]) / n;
        EXPECT_NEAR(observed, expected,
                    0.02 + 3.0 * std::sqrt(expected / n));
    }
}

TEST(SamplerTest, SchedulerStrainScalesWeight)
{
    DeviceModel d = makeK40();
    WorkloadTraits small = uniformTraits();
    small.totalThreads = 16384;
    WorkloadTraits big = uniformTraits();
    big.totalThreads = 1048576;
    StrikeSampler ss(d, buildLaunch(d, small));
    StrikeSampler sb(d, buildLaunch(d, big));
    EXPECT_GT(sb.weight(ResourceKind::Scheduler),
              2.0 * ss.weight(ResourceKind::Scheduler));
}

TEST(SamplerTest, OutcomeDistributionMatchesProfile)
{
    DeviceModel d = makeK40();
    KernelLaunch l = buildLaunch(d, uniformTraits());
    StrikeSampler s(d, l);
    Rng rng(3);
    const Resource &rf = d.resource(ResourceKind::RegisterFile);
    uint64_t sdc = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (s.sampleOutcome(ResourceKind::RegisterFile, rng) ==
            Outcome::Sdc) {
            ++sdc;
        }
    }
    EXPECT_NEAR(static_cast<double>(sdc) / n, rf.outcome.pSdc,
                0.02);
}

TEST(SamplerTest, ControlFlowBoostsCrashes)
{
    DeviceModel d = makeK40();
    WorkloadTraits calm = uniformTraits();
    calm.controlFlowIntensity = 0.0;
    WorkloadTraits branchy = uniformTraits();
    branchy.controlFlowIntensity = 1.0;
    StrikeSampler sc(d, buildLaunch(d, calm));
    StrikeSampler sb(d, buildLaunch(d, branchy));
    Rng rng(4);
    auto crash_rate = [&](StrikeSampler &s) {
        Rng local(5);
        uint64_t crash = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i) {
            Outcome o = s.sampleOutcome(ResourceKind::Scheduler,
                                        local);
            crash += o == Outcome::Crash || o == Outcome::Hang;
        }
        return static_cast<double>(crash) / n;
    };
    EXPECT_GT(crash_rate(sb), crash_rate(sc) + 0.03);
    (void)rng;
}

TEST(SamplerTest, CrashExposureShieldsStorage)
{
    DeviceModel d = makeK40();
    WorkloadTraits exposed = uniformTraits();
    exposed.crashExposure = 1.0;
    WorkloadTraits shielded = uniformTraits();
    shielded.crashExposure = 0.2;
    StrikeSampler se(d, buildLaunch(d, exposed));
    StrikeSampler ss(d, buildLaunch(d, shielded));
    auto crash_rate = [&](StrikeSampler &s, ResourceKind kind) {
        Rng local(6);
        uint64_t crash = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i) {
            Outcome o = s.sampleOutcome(kind, local);
            crash += o == Outcome::Crash || o == Outcome::Hang;
        }
        return static_cast<double>(crash) / n;
    };
    // Storage crashes shrink; logic crashes are untouched.
    EXPECT_LT(crash_rate(ss, ResourceKind::L2Cache),
              0.5 * crash_rate(se, ResourceKind::L2Cache));
    EXPECT_NEAR(crash_rate(ss, ResourceKind::Fpu),
                crash_rate(se, ResourceKind::Fpu), 0.02);
}

TEST(SamplerTest, StrikesAreComplete)
{
    DeviceModel d = makeXeonPhi();
    KernelLaunch l = buildLaunch(d, uniformTraits());
    StrikeSampler s(d, l);
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        Strike strike = s.sampleStrike(rng);
        EXPECT_GE(strike.timeFraction, 0.0);
        EXPECT_LT(strike.timeFraction, 1.0);
        EXPECT_GE(strike.burstBits, 1u);
        EXPECT_LE(strike.burstBits, d.maxBurstBits);
        EXPECT_GT(s.weight(strike.resource), 0.0);
    }
}

TEST(SamplerDeathTest, AllZeroUtilizationPanics)
{
    DeviceModel d = makeK40();
    WorkloadTraits t = uniformTraits(0.0);
    KernelLaunch l = buildLaunch(d, t);
    EXPECT_DEATH(StrikeSampler(d, l), "no sensitive resource");
}

} // anonymous namespace
} // namespace radcrit
