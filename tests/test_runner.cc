/**
 * @file
 * Tests for the campaign runner and its aggregations.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "campaign/runner.hh"
#include "check/statcheck.hh"
#include "common/logging.hh"
#include "kernels/dgemm.hh"

namespace radcrit
{
namespace
{

class RunnerTest : public ::testing::Test
{
  protected:
    DeviceModel device_ = makeK40();
    Dgemm dgemm_{device_, 64, 42};

    CampaignConfig
    config(uint64_t runs, uint64_t seed = 7)
    {
        CampaignConfig cfg;
        cfg.sim.faultyRuns = runs;
        cfg.sim.seed = seed;
        return cfg;
    }
};

TEST_F(RunnerTest, RunsRequestedCount)
{
    CampaignResult res = runCampaign(device_, dgemm_, config(50));
    EXPECT_EQ(res.runs.size(), 50u);
    EXPECT_EQ(res.deviceName, "K40");
    EXPECT_EQ(res.workloadName, "DGEMM");
    EXPECT_GT(res.sensitiveAreaAu, 0.0);
}

TEST_F(RunnerTest, OutcomeCountsPartition)
{
    CampaignResult res = runCampaign(device_, dgemm_, config(120));
    uint64_t total = res.count(Outcome::Masked) +
        res.count(Outcome::Sdc) + res.count(Outcome::Crash) +
        res.count(Outcome::Hang);
    EXPECT_EQ(total, 120u);
    EXPECT_GT(res.count(Outcome::Sdc), 0u);
}

TEST_F(RunnerTest, ReproducibleFromSeed)
{
    CampaignResult a = runCampaign(device_, dgemm_, config(40, 3));
    CampaignResult b = runCampaign(device_, dgemm_, config(40, 3));
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome);
        EXPECT_EQ(a.runs[i].strike.resource,
                  b.runs[i].strike.resource);
        EXPECT_EQ(a.runs[i].crit.numIncorrect,
                  b.runs[i].crit.numIncorrect);
    }
}

TEST_F(RunnerTest, DifferentSeedsDiffer)
{
    CampaignResult a = runCampaign(device_, dgemm_, config(40, 1));
    CampaignResult b = runCampaign(device_, dgemm_, config(40, 2));
    bool any_diff = false;
    for (size_t i = 0; i < a.runs.size(); ++i) {
        if (a.runs[i].outcome != b.runs[i].outcome ||
            a.runs[i].strike.resource !=
                b.runs[i].strike.resource) {
            any_diff = true;
        }
    }
    EXPECT_TRUE(any_diff);
}

TEST_F(RunnerTest, SdcRunsCarryMetrics)
{
    CampaignResult res = runCampaign(device_, dgemm_, config(150));
    for (const auto &run : res.runs) {
        if (run.outcome == Outcome::Sdc) {
            EXPECT_GT(run.crit.numIncorrect, 0u);
            EXPECT_NE(run.crit.pattern, Pattern::None);
        }
    }
}

TEST_F(RunnerTest, FitScalesWithCounts)
{
    CampaignResult res = runCampaign(device_, dgemm_, config(100));
    EXPECT_DOUBLE_EQ(res.fitAu(0), 0.0);
    EXPECT_DOUBLE_EQ(res.fitAu(50), 0.5 * res.fitAu(100));
    EXPECT_NEAR(res.fitTotalAu(false),
                res.fitAu(res.count(Outcome::Sdc)), 1e-12);
}

TEST_F(RunnerTest, FilteredFitNeverExceedsAll)
{
    CampaignResult res = runCampaign(device_, dgemm_, config(200));
    EXPECT_LE(res.fitTotalAu(true), res.fitTotalAu(false));
    EXPECT_GE(res.filteredOutFraction(), 0.0);
    EXPECT_LE(res.filteredOutFraction(), 1.0);
}

TEST_F(RunnerTest, BreakdownTotalsMatch)
{
    CampaignResult res = runCampaign(device_, dgemm_, config(200));
    FitBreakdown all = res.fitByPattern(false);
    EXPECT_NEAR(all.total(), res.fitTotalAu(false),
                1e-9 * std::max(1.0, all.total()));
    FitBreakdown filtered = res.fitByPattern(true);
    EXPECT_NEAR(filtered.total(), res.fitTotalAu(true),
                1e-9 * std::max(1.0, filtered.total()));
}

TEST_F(RunnerTest, SdcOverDetectablePositive)
{
    CampaignResult res = runCampaign(device_, dgemm_, config(300));
    check::CheckResult c = check::ratioAtLeast(
        "dgemm_sdc_to_detectable", res.count(Outcome::Sdc),
        res.count(Outcome::Crash) + res.count(Outcome::Hang),
        0.5, 0.05);
    EXPECT_TRUE(c) << c.message;
}

TEST(CampaignResultTest, SdcOverDetectableNanWithoutDetectable)
{
    // With no crash or hang the ratio has no denominator: it must
    // come back NaN (rendered "n/a"), not the raw SDC count.
    CampaignResult res;
    RunRecord sdc;
    sdc.outcome = Outcome::Sdc;
    res.runs.push_back(sdc);
    res.runs.push_back(RunRecord{}); // masked
    EXPECT_TRUE(std::isnan(res.sdcOverDetectable()));

    RunRecord crash;
    crash.outcome = Outcome::Crash;
    res.runs.push_back(crash);
    EXPECT_DOUBLE_EQ(res.sdcOverDetectable(), 1.0);
}

TEST_F(RunnerTest, StatsCountersMatchOutcomeCounts)
{
    CampaignResult res = runCampaign(device_, dgemm_, config(130));
    // The snapshot is scoped to this campaign (a registry diff),
    // so its counters must equal the aggregated run outcomes even
    // after the earlier campaigns in this process.
    EXPECT_DOUBLE_EQ(
        res.stats.value("campaign.k40.dgemm.sdc"),
        static_cast<double>(res.count(Outcome::Sdc)));
    EXPECT_DOUBLE_EQ(
        res.stats.value("campaign.k40.dgemm.crash"),
        static_cast<double>(res.count(Outcome::Crash)));
    EXPECT_DOUBLE_EQ(
        res.stats.value("campaign.k40.dgemm.hang"),
        static_cast<double>(res.count(Outcome::Hang)));
    EXPECT_DOUBLE_EQ(
        res.stats.value("campaign.k40.dgemm.masked"),
        static_cast<double>(res.count(Outcome::Masked)));
    EXPECT_DOUBLE_EQ(res.stats.value("campaign.k40.dgemm.runs"),
                     130.0);
}

TEST_F(RunnerTest, StatsCarryPhaseTimers)
{
    CampaignResult res = runCampaign(device_, dgemm_, config(40));
    EXPECT_DOUBLE_EQ(
        res.stats.value("campaign.phase.sample.calls"), 40.0);
    EXPECT_DOUBLE_EQ(
        res.stats.value("campaign.phase.classify.calls"), 40.0);
    // Replay runs only for SDC-classified strikes; metrics only
    // for non-masked replays.
    uint64_t replays = static_cast<uint64_t>(
        res.stats.value("campaign.phase.replay.calls"));
    EXPECT_GE(replays, res.count(Outcome::Sdc));
    EXPECT_DOUBLE_EQ(
        res.stats.value("campaign.phase.metrics.calls"),
        static_cast<double>(res.count(Outcome::Sdc)));
    EXPECT_DOUBLE_EQ(res.stats.value("campaign.total.calls"),
                     1.0);
    EXPECT_GT(res.stats.value("campaign.total.ns"), 0.0);
    // The kernel-side inject timer advanced once per replay.
    EXPECT_DOUBLE_EQ(
        res.stats.value("kernel.dgemm.inject.calls"),
        static_cast<double>(replays));
}

TEST_F(RunnerTest, ProgressReportingKeepsResultsIdentical)
{
    CampaignConfig with = config(30, 11);
    with.sim.progressEvery = 10;
    bool quiet = isQuiet();
    setQuiet(true);
    CampaignResult a = runCampaign(device_, dgemm_, with);
    setQuiet(quiet);
    CampaignResult b = runCampaign(device_, dgemm_,
                                   config(30, 11));
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (size_t i = 0; i < a.runs.size(); ++i)
        EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome);
}

std::vector<std::string> progressLines;

void
progressHook(const char *level, const std::string &msg)
{
    // Keep per-run progress lines; skip the launch banner.
    if (std::string(level) == "info" &&
        msg.rfind("campaign ", 0) == 0 &&
        msg.find(" runs (") != std::string::npos)
        progressLines.push_back(msg);
}

TEST_F(RunnerTest, ProgressLinesCarryThroughputAndEta)
{
    CampaignConfig cfg = config(30, 11);
    cfg.sim.progressEvery = 10;
    progressLines.clear();
    bool quiet = isQuiet();
    setQuiet(true);
    setLogHook(progressHook);
    runCampaign(device_, dgemm_, cfg);
    setLogHook(nullptr);
    setQuiet(quiet);

    ASSERT_FALSE(progressLines.empty());
    for (const std::string &line : progressLines) {
        SCOPED_TRACE(line);
        EXPECT_NE(line.find(" runs ("), std::string::npos);
        EXPECT_NE(line.find("runs/s"), std::string::npos);
        EXPECT_NE(line.find("ETA"), std::string::npos);
    }
    // The final report covers all runs and has nothing left to do.
    EXPECT_NE(progressLines.back().find("30/30 runs"),
              std::string::npos);
    EXPECT_NE(progressLines.back().find("ETA 0.0s"),
              std::string::npos);
}

TEST(RunnerDeathTest, ZeroRunsFatal)
{
    DeviceModel d = makeK40();
    Dgemm dgemm(d, 64, 42);
    CampaignConfig cfg;
    cfg.sim.faultyRuns = 0;
    EXPECT_EXIT(runCampaign(d, dgemm, cfg),
                ::testing::ExitedWithCode(1), "at least one");
}

} // anonymous namespace
} // namespace radcrit
