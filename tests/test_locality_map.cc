/**
 * @file
 * Tests for the error locality map renderer (paper Fig. 9).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "metrics/locality_map.hh"

namespace radcrit
{
namespace
{

SdcRecord
recordWith(std::initializer_list<std::pair<int64_t, int64_t>> pts,
           int64_t rows = 16, int64_t cols = 16)
{
    SdcRecord rec;
    rec.dims = 2;
    rec.extent = {rows, cols, 1};
    for (auto [r, c] : pts)
        rec.elements.push_back({{r, c, 0}, 1.0, 2.0});
    return rec;
}

TEST(LocalityMapTest, MarksCorruptedCells)
{
    LocalityMap map(recordWith({{0, 0}, {15, 15}}));
    std::string out = map.toAscii(16);
    // First grid row: corrupted at column 0.
    auto first = out.find("|#");
    EXPECT_NE(first, std::string::npos);
    EXPECT_NE(out.find("#|"), std::string::npos);
    EXPECT_NE(out.find("2 corrupted elements"),
              std::string::npos);
}

TEST(LocalityMapTest, CleanMapHasNoMarks)
{
    LocalityMap map(recordWith({}));
    std::string out = map.toAscii(16);
    // Only the footer legend mentions '#'; no grid cell is marked.
    auto grid_end = out.rfind('+');
    EXPECT_EQ(out.substr(0, grid_end).find('#'),
              std::string::npos);
    EXPECT_NE(out.find("0 corrupted elements"),
              std::string::npos);
}

TEST(LocalityMapTest, DownsamplesLargeGrids)
{
    SdcRecord rec;
    rec.dims = 2;
    rec.extent = {512, 512, 1};
    rec.elements.push_back({{511, 511, 0}, 1.0, 2.0});
    LocalityMap map(rec);
    std::string out = map.toAscii(32);
    // 32 columns of cells + 2 border chars per row.
    auto line_start = out.find("\n|");
    auto line_end = out.find('\n', line_start + 1);
    EXPECT_EQ(line_end - line_start - 1, 34u);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(LocalityMapTest, PpmWritesRedDots)
{
    std::string path = ::testing::TempDir() + "radcrit_map.ppm";
    LocalityMap map(recordWith({{1, 2}}, 4, 4));
    map.writePpm(path);
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::string magic;
    in >> magic;
    EXPECT_EQ(magic, "P6");
    int w, h, maxv;
    in >> w >> h >> maxv;
    EXPECT_EQ(w, 4);
    EXPECT_EQ(h, 4);
    in.get();
    std::vector<unsigned char> pix(4 * 4 * 3);
    in.read(reinterpret_cast<char *>(pix.data()),
            static_cast<std::streamsize>(pix.size()));
    size_t off = (1 * 4 + 2) * 3;
    EXPECT_EQ(pix[off], 220);    // red channel
    EXPECT_EQ(pix[off + 1], 30); // corrupted cell
    EXPECT_EQ(pix[0], 255);      // clean cell stays white
    std::remove(path.c_str());
}

TEST(LocalityMapDeathTest, DegenerateExtentsPanic)
{
    SdcRecord rec;
    rec.dims = 2;
    rec.extent = {0, 4, 1};
    EXPECT_DEATH(LocalityMap map(rec), "degenerate");
}

} // anonymous namespace
} // namespace radcrit
