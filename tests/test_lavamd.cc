/**
 * @file
 * Tests for the LavaMD workload and its injection hooks.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "kernels/lavamd.hh"
#include "metrics/criticality.hh"
#include "metrics/relative_error.hh"

namespace radcrit
{
namespace
{

class LavaMdTest : public ::testing::Test
{
  protected:
    DeviceModel device_ = makeXeonPhi();
    LavaMd lava_{device_, 5, 42, 2, 4, 11};
};

TEST_F(LavaMdTest, Geometry)
{
    EXPECT_EQ(lava_.boxes1d(), 5);
    EXPECT_EQ(lava_.particlesPerBox(), 25); // 100 / 4
    EXPECT_EQ(lava_.inputLabel(), "11 boxes/dim");
    EXPECT_EQ(lava_.goldenForce().size(),
              static_cast<size_t>(5 * 5 * 5 * 25));
}

TEST_F(LavaMdTest, DeviceTunesParticleCount)
{
    DeviceModel k40 = makeK40();
    LavaMd on_k40(k40, 5);
    // Paper IV-C: 192 particles per box on the K40, 100 on the
    // Phi (scaled /4).
    EXPECT_EQ(on_k40.particlesPerBox(), 48);
    EXPECT_EQ(lava_.particlesPerBox(), 25);
}

TEST_F(LavaMdTest, TraitsMatchTableII)
{
    // Table II: grid^3 x particles threads.
    EXPECT_EQ(lava_.traits().totalThreads,
              11ull * 11 * 11 * 100);
    EXPECT_GT(lava_.traits().sfuIntensity, 0.5);
}

TEST_F(LavaMdTest, GoldenForceIsFinite)
{
    for (double f : lava_.goldenForce())
        EXPECT_TRUE(std::isfinite(f));
}

TEST_F(LavaMdTest, GoldenForceMatchesDirectSum)
{
    // Recompute one particle's force by brute force over all
    // particles within the cutoff neighborhood.
    // (Box 2,2,2 has the full 27-box neighborhood.)
    // Use the spot check against a naive full recompute via the
    // kernel's own accessors: inject a no-op strike and expect no
    // mismatch, which exercises the same code path.
    Rng rng(1);
    Strike s;
    s.resource = ResourceKind::L2Cache;
    s.manifestation = Manifestation::BitFlipInputLine;
    s.timeFraction = 0.999999; // consumes at most one box
    s.burstBits = 1;
    s.entropy = 3;
    SdcRecord rec = lava_.inject(s, rng);
    // Either masked (flip underflows) or a small corrupted set.
    EXPECT_LE(rec.numIncorrect(),
              static_cast<size_t>(27 * 25));
}

TEST_F(LavaMdTest, WrongOperationIsBoxLocal)
{
    Rng rng(2);
    Strike s;
    s.resource = ResourceKind::Fpu;
    s.manifestation = Manifestation::WrongOperation;
    s.entropy = 5;
    SdcRecord rec = lava_.inject(s, rng);
    // One box of particles (possibly a couple more from SM
    // persistence), all garbage.
    EXPECT_GE(rec.numIncorrect(), 20u);
    EXPECT_LE(rec.numIncorrect(), 3u * 25u);
    EXPECT_GT(meanRelativeErrorPct(rec), 100.0);
}

TEST_F(LavaMdTest, InputCorruptionSpreadsToNeighborhood)
{
    Rng rng(3);
    Strike s;
    s.resource = ResourceKind::L2Cache;
    s.manifestation = Manifestation::BitFlipValue;
    s.timeFraction = 0.0;
    s.burstBits = 3;
    size_t best = 0;
    for (int i = 0; i < 10; ++i) {
        s.entropy = rng.next64();
        SdcRecord rec = lava_.inject(s, rng);
        best = std::max(best, uniquePositions(rec));
    }
    // The Phi's L2 serves most of the 27-box neighborhood.
    EXPECT_GE(best, 8u);
}

TEST_F(LavaMdTest, StaleDataIsClusteredAndLarge)
{
    Rng rng(4);
    Strike s;
    s.resource = ResourceKind::L2Cache;
    s.manifestation = Manifestation::StaleData;
    int meaningful = 0;
    for (int i = 0; i < 10; ++i) {
        s.entropy = rng.next64();
        SdcRecord rec = lava_.inject(s, rng);
        if (rec.empty())
            continue;
        if (maxRelativeErrorPct(rec) > 2.0)
            ++meaningful;
    }
    // Wrong-line positions are box-scale wrong: visible errors.
    EXPECT_GE(meaningful, 8);
}

TEST_F(LavaMdTest, MisscheduledBoxIsSingleBox)
{
    Rng rng(5);
    Strike s;
    s.resource = ResourceKind::Scheduler;
    s.manifestation = Manifestation::MisscheduledBlock;
    s.entropy = 6;
    SdcRecord rec = lava_.inject(s, rng);
    EXPECT_EQ(uniquePositions(rec), 1u);
    EXPECT_GT(rec.numIncorrect(), 15u);
}

TEST_F(LavaMdTest, InjectionRestoresState)
{
    // Two identical strikes must produce identical records even
    // with a different strike in between (cur arrays restored).
    Strike a;
    a.resource = ResourceKind::L2Cache;
    a.manifestation = Manifestation::BitFlipValue;
    a.timeFraction = 0.2;
    a.entropy = 77;
    Strike noise;
    noise.resource = ResourceKind::L2Cache;
    noise.manifestation = Manifestation::StaleData;
    noise.entropy = 88;

    Rng r1(9);
    SdcRecord first = lava_.inject(a, r1);
    Rng r2(10);
    lava_.inject(noise, r2);
    Rng r3(9);
    SdcRecord second = lava_.inject(a, r3);
    ASSERT_EQ(first.numIncorrect(), second.numIncorrect());
    for (size_t i = 0; i < first.elements.size(); ++i)
        EXPECT_EQ(first.elements[i].read,
                  second.elements[i].read);
}

TEST_F(LavaMdTest, BorderBoxesHaveFewerNeighborsImbalance)
{
    // Load imbalance (Table I): corner boxes interact with 8
    // boxes, center boxes with 27. Exercised through SkippedChunk
    // at t=0 on a corner box: the partial force is 0 only because
    // nothing was accumulated.
    Rng rng(6);
    Strike s;
    s.resource = ResourceKind::ControlLogic;
    s.manifestation = Manifestation::SkippedChunk;
    s.timeFraction = 0.0;
    s.entropy = 12;
    SdcRecord rec = lava_.inject(s, rng);
    EXPECT_GT(rec.numIncorrect(), 0u);
    for (const auto &e : rec.elements)
        EXPECT_EQ(e.read, 0.0);
}

TEST(LavaMdLocalityTest, CubicEmergesFromL2Lines)
{
    DeviceModel phi = makeXeonPhi();
    LavaMd lava(phi, 6, 42, 2, 4, 13);
    Rng rng(7);
    Strike s;
    s.resource = ResourceKind::L2Cache;
    s.manifestation = Manifestation::BitFlipInputLine;
    s.timeFraction = 0.0;
    s.burstBits = 4;
    int cubic = 0, total = 0;
    for (int i = 0; i < 30; ++i) {
        s.entropy = rng.next64();
        SdcRecord rec = lava.inject(s, rng);
        if (rec.numIncorrect() < 10)
            continue;
        ++total;
        cubic += classifyLocality(rec) == Pattern::Cubic;
    }
    ASSERT_GT(total, 10);
    EXPECT_GT(static_cast<double>(cubic) /
              static_cast<double>(total), 0.5);
}

TEST(LavaMdDeathTest, TooFewBoxesFatal)
{
    DeviceModel d = makeK40();
    EXPECT_EXIT(LavaMd(d, 1), ::testing::ExitedWithCode(1),
                "at least 2 boxes");
}

} // anonymous namespace
} // namespace radcrit
