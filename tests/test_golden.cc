/**
 * @file
 * Golden-snapshot regression of the figure CSV artifacts and the
 * per-run CSV rows. Each test rebuilds, in-process and at reduced
 * scale, exactly the rows the fig2-fig8 bench harnesses dump
 * (scatter: device/input/numIncorrect/meanRelErrPct; locality:
 * FIT-by-pattern with and without the filter) plus runRows(), and
 * compares them cell-by-cell against committed goldens in
 * tests/goldens/. Campaigns are bit-identical for any worker
 * count, so these snapshots are stable across machines and jobs
 * settings.
 *
 * Re-bless after an intentional change with tools/regen_goldens.sh
 * (drives RADCRIT_REGEN_GOLDENS=1 through this binary).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/paperconfigs.hh"
#include "campaign/runner.hh"
#include "campaign/series.hh"
#include "check/golden.hh"
#include "common/table.hh"
#include "logs/beamlog.hh"
#include "kernels/clamr.hh"
#include "kernels/dgemm.hh"
#include "kernels/hotspot.hh"
#include "kernels/lavamd.hh"

#ifndef RADCRIT_GOLDEN_DIR
#define RADCRIT_GOLDEN_DIR "tests/goldens"
#endif

namespace radcrit
{
namespace
{

constexpr uint64_t kRuns = 120;

std::unique_ptr<Workload>
makeSmall(const std::string &name, const DeviceModel &device)
{
    if (name == "DGEMM")
        return std::make_unique<Dgemm>(device, 64, 42);
    if (name == "LavaMD")
        return std::make_unique<LavaMd>(device, 5, 42, 2, 4, 11);
    if (name == "HotSpot")
        return std::make_unique<HotSpot>(device, 64, 64, 42);
    return std::make_unique<Clamr>(device, 64, 64, 42);
}

/** One small campaign per device, cached across tests. */
const std::vector<CampaignResult> &
campaignsFor(const std::string &workload_name)
{
    static std::map<std::string, std::vector<CampaignResult>>
        cache;
    auto it = cache.find(workload_name);
    if (it != cache.end())
        return it->second;
    std::vector<CampaignResult> results;
    for (DeviceId id : {DeviceId::K40, DeviceId::XeonPhi}) {
        DeviceModel device = makeDevice(id);
        auto workload = makeSmall(workload_name, device);
        CampaignConfig cfg = defaultCampaign(
            kRuns, device.name, workload->name(),
            workload->inputLabel());
        results.push_back(runCampaign(device, *workload, cfg));
    }
    return cache.emplace(workload_name, std::move(results))
        .first->second;
}

std::string
goldenPath(const std::string &file)
{
    return check::goldenDir(RADCRIT_GOLDEN_DIR) + "/" + file;
}

/** The rows renderScatterFigure() writes as CSV. */
check::Table
scatterTable(const std::vector<CampaignResult> &results)
{
    check::Table rows;
    rows.push_back(
        {"device", "input", "numIncorrect", "meanRelErrPct"});
    for (const auto &res : results) {
        ScatterSeries s = scatterSeries(res);
        for (size_t i = 0; i < s.xs.size(); ++i) {
            rows.push_back({res.deviceName, res.inputLabel,
                            TextTable::num(s.xs[i], 0),
                            TextTable::num(s.ys[i], 4)});
        }
    }
    return rows;
}

/** The rows renderLocalityFigure() writes as CSV. */
check::Table
localityTable(const std::vector<CampaignResult> &results,
              const std::vector<Pattern> &patterns)
{
    check::Table rows;
    std::vector<std::string> header{"device", "input",
                                    "filtered"};
    for (Pattern p : patterns)
        header.push_back(patternName(p));
    header.push_back("total");
    rows.push_back(header);
    for (const auto &res : results) {
        for (bool filtered : {false, true}) {
            FitBreakdown bd = res.fitByPattern(filtered);
            std::vector<std::string> row{res.deviceName,
                                         res.inputLabel,
                                         filtered ? "yes" : "no"};
            for (Pattern p : patterns)
                row.push_back(TextTable::num(bd.of(p), 4));
            row.push_back(TextTable::num(bd.total(), 4));
            rows.push_back(row);
        }
    }
    return rows;
}

void
expectGolden(const std::string &file, const check::Table &actual)
{
    check::GoldenResult r =
        check::compareGolden(goldenPath(file), actual);
    EXPECT_TRUE(r) << r.message;
    if (r.regenerated)
        GTEST_SKIP() << r.message;
}

TEST(GoldenFigures, Fig2DgemmScatter)
{
    expectGolden("fig2_dgemm_scatter.csv",
                 scatterTable(campaignsFor("DGEMM")));
}

TEST(GoldenFigures, Fig3DgemmLocality)
{
    expectGolden("fig3_dgemm_locality.csv",
                 localityTable(campaignsFor("DGEMM"),
                               patterns2d()));
}

TEST(GoldenFigures, Fig4LavamdScatter)
{
    expectGolden("fig4_lavamd_scatter.csv",
                 scatterTable(campaignsFor("LavaMD")));
}

TEST(GoldenFigures, Fig5LavamdLocality)
{
    expectGolden("fig5_lavamd_locality.csv",
                 localityTable(campaignsFor("LavaMD"),
                               patterns3d()));
}

TEST(GoldenFigures, Fig6HotspotScatter)
{
    expectGolden("fig6_hotspot_scatter.csv",
                 scatterTable(campaignsFor("HotSpot")));
}

TEST(GoldenFigures, Fig7HotspotLocality)
{
    expectGolden("fig7_hotspot_locality.csv",
                 localityTable(campaignsFor("HotSpot"),
                               patterns2d()));
}

TEST(GoldenFigures, Fig8ClamrScatter)
{
    expectGolden("fig8_clamr_scatter.csv",
                 scatterTable(campaignsFor("CLAMR")));
}

TEST(GoldenRunRows, DgemmK40PerRunCsv)
{
    const CampaignResult &res = campaignsFor("DGEMM").front();
    check::Table rows;
    rows.push_back(runRowsHeader());
    for (auto &row : runRows(res))
        rows.push_back(std::move(row));
    expectGolden("runrows_dgemm_k40.csv", rows);
}

TEST(GoldenBeamLog, DgemmK40Artifact)
{
    // The serialized beam log is itself a published artifact
    // (paper contribution 2): its textual form must stay stable
    // line for line, not just analysis-equivalent.
    DeviceModel device = makeDevice(DeviceId::K40);
    auto workload = makeSmall("DGEMM", device);
    CampaignConfig cfg = defaultCampaign(
        30, device.name, workload->name(),
        workload->inputLabel());
    CampaignRaw raw = simulateCampaign(device, *workload,
                                       cfg.sim);
    std::stringstream ss;
    writeBeamLog(raw, ss);
    check::Table rows;
    std::string line;
    while (std::getline(ss, line))
        rows.push_back({line});
    expectGolden("beamlog_dgemm_k40.beamlog", rows);
}

TEST(GoldenHarness, MissingGoldenExplainsItself)
{
    if (getenv("RADCRIT_REGEN_GOLDENS"))
        GTEST_SKIP() << "regen mode";
    check::GoldenResult r = check::compareGolden(
        goldenPath("no_such_golden.csv"), {{"a", "b"}});
    EXPECT_FALSE(r);
    EXPECT_NE(r.message.find("regen_goldens.sh"),
              std::string::npos)
        << r.message;
}

} // anonymous namespace
} // namespace radcrit
