/**
 * @file
 * Tests for the spatial-locality classifier (paper metric 4).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "metrics/locality.hh"

namespace radcrit
{
namespace
{

SdcRecord
make2d(std::initializer_list<std::pair<int64_t, int64_t>> coords,
       int64_t extent = 100)
{
    SdcRecord rec;
    rec.dims = 2;
    rec.extent = {extent, extent, 1};
    for (auto [r, c] : coords)
        rec.elements.push_back({{r, c, 0}, 1.0, 2.0});
    return rec;
}

SdcRecord
make3d(std::initializer_list<std::array<int64_t, 3>> coords,
       int64_t extent = 20)
{
    SdcRecord rec;
    rec.dims = 3;
    rec.extent = {extent, extent, extent};
    for (auto c : coords)
        rec.elements.push_back({c, 1.0, 2.0});
    return rec;
}

TEST(LocalityTest, EmptyIsNone)
{
    EXPECT_EQ(classifyLocality(make2d({})), Pattern::None);
}

TEST(LocalityTest, OneElementIsSingle)
{
    EXPECT_EQ(classifyLocality(make2d({{3, 4}})),
              Pattern::Single);
}

TEST(LocalityTest, DuplicateCoordsAreSingle)
{
    // Several LavaMD particles in the same box share coordinates.
    SdcRecord rec = make3d({{1, 2, 3}, {1, 2, 3}, {1, 2, 3}});
    EXPECT_EQ(rec.numIncorrect(), 3u);
    EXPECT_EQ(uniquePositions(rec), 1u);
    EXPECT_EQ(classifyLocality(rec), Pattern::Single);
}

TEST(LocalityTest, RowIsLine)
{
    EXPECT_EQ(classifyLocality(make2d({{5, 1}, {5, 7}, {5, 50}})),
              Pattern::Line);
}

TEST(LocalityTest, ColumnIsLine)
{
    EXPECT_EQ(classifyLocality(make2d({{1, 9}, {30, 9}, {80, 9}})),
              Pattern::Line);
}

TEST(LocalityTest, AxisLineIn3d)
{
    EXPECT_EQ(classifyLocality(make3d({{2, 5, 1}, {2, 5, 9},
                                       {2, 5, 4}})),
              Pattern::Line);
}

TEST(LocalityTest, DenseBlockIsSquare)
{
    std::initializer_list<std::pair<int64_t, int64_t>> blk = {
        {0, 0}, {0, 1}, {0, 2},
        {1, 0}, {1, 1}, {1, 2},
        {2, 0}, {2, 1}, {2, 2}};
    EXPECT_EQ(classifyLocality(make2d(blk)), Pattern::Square);
}

TEST(LocalityTest, ScatteredIsRandom)
{
    EXPECT_EQ(classifyLocality(make2d({{1, 2}, {50, 70}, {90, 5},
                                       {20, 99}})),
              Pattern::Random);
}

TEST(LocalityTest, DenseCubeIsCubic)
{
    std::vector<std::array<int64_t, 3>> coords;
    SdcRecord rec;
    rec.dims = 3;
    rec.extent = {20, 20, 20};
    for (int64_t x = 4; x < 7; ++x)
        for (int64_t y = 4; y < 7; ++y)
            for (int64_t z = 4; z < 7; ++z)
                rec.elements.push_back({{x, y, z}, 1.0, 2.0});
    EXPECT_EQ(classifyLocality(rec), Pattern::Cubic);
}

TEST(LocalityTest, Scattered3dIsRandom)
{
    EXPECT_EQ(classifyLocality(make3d({{0, 0, 0}, {19, 3, 7},
                                       {5, 18, 1}, {11, 2, 15}})),
              Pattern::Random);
}

TEST(LocalityTest, PlanarClusterIn3dIsSquare)
{
    // A dense patch confined to one z-plane.
    SdcRecord rec;
    rec.dims = 3;
    rec.extent = {20, 20, 20};
    for (int64_t x = 2; x < 5; ++x)
        for (int64_t y = 2; y < 5; ++y)
            rec.elements.push_back({{x, y, 7}, 1.0, 2.0});
    EXPECT_EQ(classifyLocality(rec), Pattern::Square);
}

TEST(LocalityTest, TwoAdjacentRowsAreSquare)
{
    SdcRecord rec;
    rec.dims = 2;
    rec.extent = {100, 100, 1};
    for (int64_t c = 0; c < 100; ++c) {
        rec.elements.push_back({{10, c, 0}, 1.0, 2.0});
        rec.elements.push_back({{11, c, 0}, 1.0, 2.0});
    }
    EXPECT_EQ(classifyLocality(rec), Pattern::Square);
}

TEST(LocalityTest, TwoDistantRowsAreRandom)
{
    SdcRecord rec;
    rec.dims = 2;
    rec.extent = {100, 100, 1};
    for (int64_t c = 0; c < 100; ++c) {
        rec.elements.push_back({{5, c, 0}, 1.0, 2.0});
        rec.elements.push_back({{95, c, 0}, 1.0, 2.0});
    }
    EXPECT_EQ(classifyLocality(rec), Pattern::Random);
}

TEST(LocalityTest, DensityThresholdRespected)
{
    // 4 points on the corners of a 10x10 box: density 0.04.
    auto corners = make2d({{0, 0}, {0, 9}, {9, 0}, {9, 9}});
    LocalityParams loose;
    loose.squareDensity = 0.03;
    LocalityParams tight;
    tight.squareDensity = 0.05;
    EXPECT_EQ(classifyLocality(corners, loose), Pattern::Square);
    EXPECT_EQ(classifyLocality(corners, tight), Pattern::Random);
}

TEST(LocalityTest, UniquePositionsCounts)
{
    SdcRecord rec = make2d({{1, 1}, {1, 1}, {2, 2}});
    EXPECT_EQ(uniquePositions(rec), 2u);
}

TEST(LocalityTest, PatternNames)
{
    EXPECT_STREQ(patternName(Pattern::Cubic), "Cubic");
    EXPECT_STREQ(patternName(Pattern::None), "None");
    EXPECT_STREQ(patternName(Pattern::Random), "Random");
}

/**
 * Property: random uniformly scattered large samples classify as
 * Random, never Square (density of k points in [0,n)^2 box).
 */
class ScatterPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(ScatterPropertyTest, UniformScatterIsRandom)
{
    Rng rng(GetParam());
    SdcRecord rec;
    rec.dims = 2;
    rec.extent = {1000, 1000, 1};
    for (int i = 0; i < 30; ++i) {
        rec.elements.push_back({{rng.uniformRange(0, 999),
                                 rng.uniformRange(0, 999), 0},
                                1.0, 2.0});
    }
    Pattern p = classifyLocality(rec);
    EXPECT_TRUE(p == Pattern::Random || p == Pattern::Line)
        << patternName(p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScatterPropertyTest,
                         ::testing::Range(1, 9));

} // anonymous namespace
} // namespace radcrit
