/**
 * @file
 * Tests for the beam-log writer/reader — the canonical
 * (de)serialization of CampaignRaw (paper contribution 2). The key
 * property: analyze(parse(write(raw))) is bit-identical to
 * analyze(raw), so a third party with only the log reproduces every
 * published metric.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "campaign/runner.hh"
#include "kernels/dgemm.hh"
#include "kernels/lavamd.hh"
#include "logs/beamlog.hh"
#include "metrics/criticality.hh"

namespace radcrit
{
namespace
{

class BeamLogTest : public ::testing::Test
{
  protected:
    DeviceModel device_ = makeK40();
    Dgemm dgemm_{device_, 64, 42};

    CampaignRaw
    campaign(uint64_t runs = 60)
    {
        SimConfig cfg;
        cfg.faultyRuns = runs;
        cfg.seed = 11;
        return simulateCampaign(device_, dgemm_, cfg);
    }

    static CampaignRaw
    roundTrip(const CampaignRaw &raw)
    {
        std::stringstream ss;
        writeBeamLog(raw, ss);
        return readBeamLog(ss);
    }
};

TEST_F(BeamLogTest, RoundTripPreservesRuns)
{
    CampaignRaw raw = campaign();
    CampaignRaw log = roundTrip(raw);

    EXPECT_EQ(log.deviceName, "K40");
    EXPECT_EQ(log.workloadName, "DGEMM");
    EXPECT_EQ(log.sim.seed, 11u);
    EXPECT_EQ(log.sim.faultyRuns, raw.sim.faultyRuns);
    EXPECT_DOUBLE_EQ(log.sensitiveAreaAu, raw.sensitiveAreaAu);
    ASSERT_EQ(log.runs.size(), raw.runs.size());
    for (size_t i = 0; i < raw.runs.size(); ++i) {
        EXPECT_EQ(log.runs[i].index, raw.runs[i].index);
        EXPECT_EQ(log.runs[i].outcome, raw.runs[i].outcome);
        EXPECT_EQ(log.runs[i].strike.resource,
                  raw.runs[i].strike.resource);
        EXPECT_EQ(log.runs[i].strike.manifestation,
                  raw.runs[i].strike.manifestation);
        EXPECT_DOUBLE_EQ(log.runs[i].strike.timeFraction,
                         raw.runs[i].strike.timeFraction);
    }
}

TEST_F(BeamLogTest, SerializationIsAFixedPoint)
{
    // write(parse(write(raw))) == write(raw): %.17g printing makes
    // the textual form a fixed point of the round trip.
    CampaignRaw raw = campaign();
    std::stringstream first;
    writeBeamLog(raw, first);
    std::stringstream second;
    writeBeamLog(roundTrip(raw), second);
    EXPECT_EQ(first.str(), second.str());
}

TEST_F(BeamLogTest, ReanalysisIsBitIdentical)
{
    // The headline guarantee: analysis of the reloaded log matches
    // analysis of the in-memory campaign bit for bit.
    CampaignRaw raw = campaign(100);
    CampaignRaw log = roundTrip(raw);
    AnalysisConfig acfg;
    CampaignResult a = analyzeCampaign(raw, acfg);
    CampaignResult b = analyzeCampaign(log, acfg);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome);
        EXPECT_EQ(a.runs[i].crit.numIncorrect,
                  b.runs[i].crit.numIncorrect);
        EXPECT_EQ(a.runs[i].crit.meanRelErrPct,
                  b.runs[i].crit.meanRelErrPct);
        EXPECT_EQ(a.runs[i].crit.pattern, b.runs[i].crit.pattern);
        EXPECT_EQ(a.runs[i].crit.executionFiltered,
                  b.runs[i].crit.executionFiltered);
    }
    EXPECT_EQ(a.fitTotalAu(true), b.fitTotalAu(true));
    EXPECT_EQ(a.fitTotalAu(false), b.fitTotalAu(false));
}

TEST_F(BeamLogTest, LoggedRecordsMatchCampaignMetrics)
{
    // Stored mismatch records carry the analysis-independent
    // corruption counts verbatim.
    CampaignRaw raw = campaign();
    CampaignRaw log = roundTrip(raw);
    for (size_t i = 0; i < raw.runs.size(); ++i) {
        if (raw.runs[i].outcome != Outcome::Sdc)
            continue;
        EXPECT_EQ(log.runs[i].record.numIncorrect(),
                  raw.runs[i].record.numIncorrect());
        for (const auto &e : log.runs[i].record.elements)
            EXPECT_TRUE(std::isfinite(e.expected));
    }
    EXPECT_EQ(log.count(Outcome::Sdc), raw.count(Outcome::Sdc));
    EXPECT_EQ(log.count(Outcome::Crash),
              raw.count(Outcome::Crash));
}

TEST_F(BeamLogTest, DifferentThresholdsDiffer)
{
    // The whole point of publishing logs: users can apply their
    // own filters, without re-running a kernel.
    CampaignRaw log = roundTrip(campaign(100));
    AnalysisConfig strict_cfg;
    strict_cfg.filterThresholdPct = 0.0;
    AnalysisConfig loose_cfg;
    loose_cfg.filterThresholdPct = 50.0;
    CampaignResult strict = analyzeCampaign(log, strict_cfg);
    CampaignResult loose = analyzeCampaign(log, loose_cfg);
    uint64_t strict_filtered = 0, loose_filtered = 0;
    for (size_t i = 0; i < strict.runs.size(); ++i) {
        strict_filtered += strict.runs[i].crit.executionFiltered;
        loose_filtered += loose.runs[i].crit.executionFiltered;
    }
    EXPECT_EQ(strict_filtered, 0u);
    EXPECT_LE(strict_filtered, loose_filtered);
    EXPECT_GE(strict.fitTotalAu(true), loose.fitTotalAu(true));
}

TEST(BeamLog3dTest, LavaMdRoundTripKeepsBoxCoordinates)
{
    // 3D records (LavaMD box space, duplicate coordinates for
    // particles sharing a box) must survive the log round trip.
    DeviceModel device = makeXeonPhi();
    LavaMd lava(device, 5, 42, 2, 4, 11);
    SimConfig cfg;
    cfg.faultyRuns = 60;
    cfg.seed = 23;
    CampaignRaw raw = simulateCampaign(device, lava, cfg);
    CampaignResult res = analyzeCampaign(raw, AnalysisConfig{});

    std::stringstream ss;
    writeBeamLog(raw, ss);
    CampaignRaw log = readBeamLog(ss);
    ASSERT_EQ(log.runs.size(), raw.runs.size());
    bool saw_sdc = false;
    for (size_t i = 0; i < raw.runs.size(); ++i) {
        if (raw.runs[i].outcome != Outcome::Sdc)
            continue;
        saw_sdc = true;
        const SdcRecord &rec = log.runs[i].record;
        EXPECT_EQ(rec.dims, 3);
        EXPECT_EQ(rec.extent[2], 5);
        EXPECT_EQ(rec.numIncorrect(),
                  res.runs[i].crit.numIncorrect);
        // Re-analysis of the reloaded record reproduces the
        // campaign's locality classification.
        CriticalityReport crit = analyzeCriticality(rec);
        EXPECT_EQ(crit.pattern, res.runs[i].crit.pattern);
        EXPECT_NEAR(crit.meanRelErrPct,
                    res.runs[i].crit.meanRelErrPct,
                    1e-9 * (1.0 + crit.meanRelErrPct));
    }
    EXPECT_TRUE(saw_sdc);
}

TEST(BeamLogParseDeathTest, MissingHeaderFatal)
{
    std::stringstream ss("#RUN idx=0 outcome=Masked "
                         "resource=RegisterFile "
                         "manifestation=BitFlipValue t=0.5 "
                         "burst=1 entropy=1\n#END idx=0\n");
    EXPECT_EXIT(readBeamLog(ss), ::testing::ExitedWithCode(1),
                "no #HEADER");
}

TEST(BeamLogParseDeathTest, VersionMismatchFatal)
{
    std::stringstream ss(
        "#HEADER version=1 device=K40 workload=DGEMM input=x "
        "seed=1 runs=0 sensitive_area_au=1\n");
    EXPECT_EXIT(readBeamLog(ss), ::testing::ExitedWithCode(1),
                "unsupported beam-log version 1");
}

TEST(BeamLogParseDeathTest, TruncatedRunFatal)
{
    std::stringstream ss(
        "#HEADER version=2 device=K40 workload=DGEMM input=x "
        "seed=1 runs=1 sensitive_area_au=1\n"
        "#RUN idx=0 outcome=SDC resource=RegisterFile "
        "manifestation=BitFlipValue t=0.5 burst=1 entropy=1\n");
    EXPECT_EXIT(readBeamLog(ss), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(BeamLogParseDeathTest, RunCountMismatchFatal)
{
    std::stringstream ss(
        "#HEADER version=2 device=K40 workload=DGEMM input=x "
        "seed=1 runs=2 sensitive_area_au=1\n"
        "#RUN idx=0 outcome=Masked resource=RegisterFile "
        "manifestation=BitFlipValue t=0.5 burst=1 entropy=1\n"
        "#END idx=0\n");
    EXPECT_EXIT(readBeamLog(ss), ::testing::ExitedWithCode(1),
                "declares 2 runs but contains 1");
}

TEST(BeamLogParseDeathTest, UnknownKeywordFatal)
{
    std::stringstream ss(
        "#HEADER version=2 device=K40 workload=DGEMM input=x "
        "seed=1 runs=0 sensitive_area_au=1\n"
        "#WHAT is=this\n");
    EXPECT_EXIT(readBeamLog(ss), ::testing::ExitedWithCode(1),
                "unknown beam-log keyword");
}

TEST(BeamLogParseDeathTest, MalformedFieldFatal)
{
    std::stringstream ss(
        "#HEADER version=2 device=K40 workload=DGEMM input=x "
        "seed=1 runs=1 sensitive_area_au=1\n"
        "#RUN idx=0 outcome=Nonsense resource=RegisterFile "
        "manifestation=BitFlipValue t=0.5 burst=1 entropy=1\n"
        "#END idx=0\n");
    EXPECT_EXIT(readBeamLog(ss), ::testing::ExitedWithCode(1),
                "unknown outcome");
}

TEST(BeamLogParseDeathTest, MidRecordEofPinsRunIndex)
{
    // The exact diagnostic matters: the campaign store's
    // quarantine reason and tools parsing stderr both key on it.
    std::stringstream ss(
        "#HEADER version=2 device=K40 workload=DGEMM input=x "
        "seed=1 runs=2 sensitive_area_au=1\n"
        "#RUN idx=0 outcome=Masked resource=RegisterFile "
        "manifestation=BitFlipValue t=0.5 burst=1 entropy=1\n"
        "#END idx=0\n"
        "#RUN idx=1 outcome=SDC resource=RegisterFile "
        "manifestation=BitFlipValue t=0.5 burst=1 entropy=1\n"
        "#DIMS dims=2 x=4 y=4 z=1\n");
    EXPECT_EXIT(readBeamLog(ss), ::testing::ExitedWithCode(1),
                "beam log truncated inside run 1");
}

TEST(BeamLogTolerantRead, NulloptCarriesTheFatalDiagnostic)
{
    // tryReadBeamLog() is the store's recovery path: same parse,
    // same message, no process exit.
    std::stringstream ss(
        "#HEADER version=2 device=K40 workload=DGEMM input=x "
        "seed=1 runs=1 sensitive_area_au=1\n"
        "#RUN idx=0 outcome=SDC resource=RegisterFile "
        "manifestation=BitFlipValue t=0.5 burst=1 entropy=1\n");
    std::string error;
    EXPECT_FALSE(tryReadBeamLog(ss, &error).has_value());
    EXPECT_EQ(error, "beam log truncated inside run 0");
}

TEST(BeamLogTolerantRead, GoodInputParsesLikeStrictRead)
{
    DeviceModel device = makeK40();
    Dgemm dgemm(device, 64, 42);
    SimConfig cfg;
    cfg.faultyRuns = 20;
    cfg.seed = 11;
    CampaignRaw raw = simulateCampaign(device, dgemm, cfg);
    std::stringstream ss;
    writeBeamLog(raw, ss);
    std::string error;
    std::optional<CampaignRaw> log = tryReadBeamLog(ss, &error);
    ASSERT_TRUE(log.has_value()) << error;
    EXPECT_TRUE(error.empty());
    EXPECT_EQ(log->runs.size(), raw.runs.size());
}

TEST(BeamLogTolerantRead, UnreadableFileReportsOpenFailure)
{
    std::string error;
    EXPECT_FALSE(
        tryReadBeamLogFile("/nonexistent/dir/x.beamlog", &error)
            .has_value());
    EXPECT_NE(error.find("cannot open beam log"),
              std::string::npos);
}

} // anonymous namespace
} // namespace radcrit
