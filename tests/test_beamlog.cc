/**
 * @file
 * Tests for the beam-log writer/reader and third-party
 * re-analysis (paper contribution 2).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "campaign/runner.hh"
#include "kernels/dgemm.hh"
#include "kernels/lavamd.hh"
#include "logs/beamlog.hh"
#include "metrics/criticality.hh"

namespace radcrit
{
namespace
{

class BeamLogTest : public ::testing::Test
{
  protected:
    DeviceModel device_ = makeK40();
    Dgemm dgemm_{device_, 64, 42};

    CampaignResult
    campaign(uint64_t runs = 60)
    {
        CampaignConfig cfg;
        cfg.faultyRuns = runs;
        cfg.seed = 11;
        return runCampaign(device_, dgemm_, cfg);
    }
};

TEST_F(BeamLogTest, RoundTripPreservesRuns)
{
    CampaignResult res = campaign();
    std::stringstream ss;
    writeBeamLog(res, dgemm_, ss);
    BeamLog log = readBeamLog(ss);

    EXPECT_EQ(log.device, "K40");
    EXPECT_EQ(log.workload, "DGEMM");
    EXPECT_EQ(log.seed, 11u);
    ASSERT_EQ(log.runs.size(), res.runs.size());
    for (size_t i = 0; i < res.runs.size(); ++i) {
        EXPECT_EQ(log.runs[i].outcome, res.runs[i].outcome);
        EXPECT_EQ(log.runs[i].strike.resource,
                  res.runs[i].strike.resource);
        EXPECT_EQ(log.runs[i].strike.manifestation,
                  res.runs[i].strike.manifestation);
        EXPECT_DOUBLE_EQ(log.runs[i].strike.timeFraction,
                         res.runs[i].strike.timeFraction);
    }
}

TEST_F(BeamLogTest, LoggedRecordsMatchCampaignMetrics)
{
    // Injection is a pure function of the strike, so the logged
    // mismatch records reproduce the campaign's metrics exactly.
    CampaignResult res = campaign();
    std::stringstream ss;
    writeBeamLog(res, dgemm_, ss);
    BeamLog log = readBeamLog(ss);
    for (size_t i = 0; i < res.runs.size(); ++i) {
        if (res.runs[i].outcome != Outcome::Sdc)
            continue;
        EXPECT_EQ(log.runs[i].record.numIncorrect(),
                  res.runs[i].crit.numIncorrect);
    }
}

TEST_F(BeamLogTest, ValuesRoundTripBitExact)
{
    CampaignResult res = campaign();
    std::stringstream ss;
    writeBeamLog(res, dgemm_, ss);
    BeamLog log = readBeamLog(ss);
    std::stringstream ss2;
    // Re-serializing the parsed log through a second write must
    // keep element values identical (printed with %.17g).
    for (const auto &run : log.runs) {
        for (const auto &e : run.record.elements) {
            EXPECT_TRUE(std::isfinite(e.expected));
            (void)e;
        }
    }
    EXPECT_EQ(log.count(Outcome::Sdc),
              res.count(Outcome::Sdc));
    EXPECT_EQ(log.count(Outcome::Crash),
              res.count(Outcome::Crash));
}

TEST_F(BeamLogTest, ReanalysisMatchesCampaignFilter)
{
    CampaignResult res = campaign(100);
    std::stringstream ss;
    writeBeamLog(res, dgemm_, ss);
    BeamLog log = readBeamLog(ss);

    LogAnalysis analysis = analyzeBeamLog(log, 2.0);
    EXPECT_EQ(analysis.sdcRuns, res.count(Outcome::Sdc));
    uint64_t filtered = 0;
    for (const auto &run : res.runs) {
        if (run.outcome == Outcome::Sdc &&
            run.crit.executionFiltered) {
            ++filtered;
        }
    }
    EXPECT_EQ(analysis.filteredOutRuns, filtered);
}

TEST_F(BeamLogTest, DifferentThresholdsDiffer)
{
    // The whole point of publishing logs: users can apply their
    // own filters.
    CampaignResult res = campaign(100);
    std::stringstream ss;
    writeBeamLog(res, dgemm_, ss);
    BeamLog log = readBeamLog(ss);
    LogAnalysis strict = analyzeBeamLog(log, 0.0);
    LogAnalysis loose = analyzeBeamLog(log, 50.0);
    EXPECT_LE(strict.filteredOutRuns, loose.filteredOutRuns);
    EXPECT_EQ(strict.filteredOutRuns, 0u);
}

TEST(BeamLog3dTest, LavaMdRoundTripKeepsBoxCoordinates)
{
    // 3D records (LavaMD box space, duplicate coordinates for
    // particles sharing a box) must survive the log round trip.
    DeviceModel device = makeXeonPhi();
    LavaMd lava(device, 5, 42, 2, 4, 11);
    CampaignConfig cfg;
    cfg.faultyRuns = 60;
    cfg.seed = 23;
    CampaignResult res = runCampaign(device, lava, cfg);

    std::stringstream ss;
    writeBeamLog(res, lava, ss);
    BeamLog log = readBeamLog(ss);
    ASSERT_EQ(log.runs.size(), res.runs.size());
    bool saw_sdc = false;
    for (size_t i = 0; i < res.runs.size(); ++i) {
        if (res.runs[i].outcome != Outcome::Sdc)
            continue;
        saw_sdc = true;
        const SdcRecord &rec = log.runs[i].record;
        EXPECT_EQ(rec.dims, 3);
        EXPECT_EQ(rec.extent[2], 5);
        EXPECT_EQ(rec.numIncorrect(),
                  res.runs[i].crit.numIncorrect);
        // Re-analysis of the reloaded record reproduces the
        // campaign's locality classification.
        CriticalityReport crit = analyzeCriticality(rec);
        EXPECT_EQ(crit.pattern, res.runs[i].crit.pattern);
        EXPECT_NEAR(crit.meanRelErrPct,
                    res.runs[i].crit.meanRelErrPct,
                    1e-9 * (1.0 + crit.meanRelErrPct));
    }
    EXPECT_TRUE(saw_sdc);
}

TEST(BeamLogParseDeathTest, MissingHeaderFatal)
{
    std::stringstream ss("#RUN idx=0 outcome=Masked "
                         "resource=RegisterFile "
                         "manifestation=BitFlipValue t=0.5 "
                         "burst=1 entropy=1\n#END idx=0\n");
    EXPECT_EXIT(readBeamLog(ss), ::testing::ExitedWithCode(1),
                "no #HEADER");
}

TEST(BeamLogParseDeathTest, TruncatedRunFatal)
{
    std::stringstream ss(
        "#HEADER device=K40 workload=DGEMM input=x seed=1\n"
        "#RUN idx=0 outcome=SDC resource=RegisterFile "
        "manifestation=BitFlipValue t=0.5 burst=1 entropy=1\n");
    EXPECT_EXIT(readBeamLog(ss), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(BeamLogParseDeathTest, UnknownKeywordFatal)
{
    std::stringstream ss(
        "#HEADER device=K40 workload=DGEMM input=x seed=1\n"
        "#WHAT is=this\n");
    EXPECT_EXIT(readBeamLog(ss), ::testing::ExitedWithCode(1),
                "unknown beam-log keyword");
}

TEST(BeamLogParseDeathTest, MalformedFieldFatal)
{
    std::stringstream ss(
        "#HEADER device=K40 workload=DGEMM input=x seed=1\n"
        "#RUN idx=0 outcome=Nonsense resource=RegisterFile "
        "manifestation=BitFlipValue t=0.5 burst=1 entropy=1\n"
        "#END idx=0\n");
    EXPECT_EXIT(readBeamLog(ss), ::testing::ExitedWithCode(1),
                "unknown outcome");
}

} // anonymous namespace
} // namespace radcrit
