/**
 * @file
 * Tests for criticality attribution and the selective-hardening
 * advisor (paper Section VI).
 */

#include <gtest/gtest.h>

#include "harden/advisor.hh"
#include "harden/attribution.hh"
#include "kernels/dgemm.hh"

namespace radcrit
{
namespace
{

CampaignResult
dgemmCampaign(const DeviceModel &device, uint64_t runs = 250)
{
    Dgemm dgemm(device, 128, 42);
    CampaignConfig cfg;
    cfg.sim.faultyRuns = runs;
    cfg.sim.seed = 5;
    return runCampaign(device, dgemm, cfg);
}

TEST(AttributionTest, SharesAndCountsConsistent)
{
    DeviceModel device = makeK40();
    CampaignResult res = dgemmCampaign(device);
    auto attribution = attributeCriticality(res);
    ASSERT_FALSE(attribution.empty());

    uint64_t strikes = 0;
    double weight_share = 0.0;
    for (const auto &r : attribution) {
        strikes += r.strikes;
        weight_share += r.weightShare;
        EXPECT_LE(r.sdcRuns, r.strikes);
        EXPECT_LE(r.criticalRuns, r.sdcRuns);
    }
    EXPECT_EQ(strikes, res.runs.size());
    EXPECT_LE(weight_share, 1.0 + 1e-9);

    // Sorted by descending critical FIT.
    for (size_t i = 1; i < attribution.size(); ++i)
        EXPECT_GE(attribution[i - 1].criticalFitAu,
                  attribution[i].criticalFitAu);
}

TEST(AttributionTest, K40DgemmTopContributorIsRegisterFile)
{
    // The K40's DGEMM critical errors come mostly from the huge
    // exposed register file (paper V-A).
    DeviceModel device = makeK40();
    auto attribution =
        attributeCriticality(dgemmCampaign(device, 400));
    EXPECT_EQ(attribution.front().resource,
              ResourceKind::RegisterFile);
}

TEST(HardeningTest, OptionsCoverDeviceResources)
{
    DeviceModel k40 = makeK40();
    auto options = standardOptions(k40);
    EXPECT_GE(options.size(), 8u);
    for (const auto &opt : options) {
        EXPECT_TRUE(k40.hasResource(opt.resource));
        EXPECT_GT(opt.survivalScale, 0.0);
        EXPECT_LT(opt.survivalScale, 1.0);
        EXPECT_GT(opt.areaCostPct, 0.0);
    }
    // No SFU option on the Phi.
    for (const auto &opt : standardOptions(makeXeonPhi()))
        EXPECT_NE(opt.resource, ResourceKind::Sfu);
}

TEST(HardeningTest, ApplyScalesSurvival)
{
    DeviceModel k40 = makeK40();
    HardeningOption ecc{ResourceKind::L2Cache, "test", 0.5, 1.0};
    DeviceModel hardened = applyHardening(k40, ecc);
    EXPECT_DOUBLE_EQ(
        hardened.resource(ResourceKind::L2Cache).eccSurvival,
        0.5 * k40.resource(ResourceKind::L2Cache).eccSurvival);
    // Logic hardening shrinks effective area instead.
    HardeningOption fpu{ResourceKind::Fpu, "test", 0.2, 1.0};
    DeviceModel hardened2 = applyHardening(k40, fpu);
    EXPECT_DOUBLE_EQ(
        hardened2.resource(ResourceKind::Fpu).sizeBits,
        0.2 * k40.resource(ResourceKind::Fpu).sizeBits);
    hardened2.validate();
}

TEST(HardeningTest, HardeningReducesCriticalFit)
{
    DeviceModel k40 = makeK40();
    CampaignResult before = dgemmCampaign(k40, 300);
    HardeningOption rf{ResourceKind::RegisterFile, "ECC", 0.1,
                       6.0};
    DeviceModel hardened = applyHardening(k40, rf);
    CampaignResult after = dgemmCampaign(hardened, 300);
    EXPECT_LT(after.fitTotalAu(true),
              before.fitTotalAu(true));
}

TEST(AdvisorTest, GreedyPlanRespectsBudgetAndImproves)
{
    DeviceModel k40 = makeK40();
    WorkloadFactory factory = [](const DeviceModel &d) {
        return std::make_unique<Dgemm>(d, 128, 42);
    };
    auto plan = advise(k40, factory, 12.0, 200, 9);
    ASSERT_FALSE(plan.empty());
    double last_cost = 0.0;
    for (const auto &step : plan) {
        EXPECT_LT(step.fitAfter, step.fitBefore);
        EXPECT_GT(step.cumulativeCostPct, last_cost);
        last_cost = step.cumulativeCostPct;
    }
    EXPECT_LE(last_cost, 12.0);
    // The overall plan removes a meaningful share of critical FIT.
    EXPECT_LT(plan.back().fitAfter,
              0.9 * plan.front().fitBefore);
}

TEST(AdvisorDeathTest, ZeroBudgetFatal)
{
    DeviceModel k40 = makeK40();
    WorkloadFactory factory = [](const DeviceModel &d) {
        return std::make_unique<Dgemm>(d, 128, 42);
    };
    EXPECT_EXIT(advise(k40, factory, 0.0, 10, 1),
                ::testing::ExitedWithCode(1), "budget");
}

TEST(HardeningDeathTest, MissingResourceFatal)
{
    DeviceModel phi = makeXeonPhi();
    HardeningOption sfu{ResourceKind::Sfu, "x", 0.1, 1.0};
    EXPECT_EXIT(applyHardening(phi, sfu),
                ::testing::ExitedWithCode(1), "no resource");
}

} // anonymous namespace
} // namespace radcrit
