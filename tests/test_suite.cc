/**
 * @file
 * Tests for the experiment suite layer: the self-registration
 * registry (uniqueness, lookup, glob matching, ordering), the
 * scheduler's campaign dedup key, and the output-directory
 * resolution that replaced the hard-coded bench_out.
 *
 * This binary links radcrit_experiments, so the full set of
 * registered paper experiments is visible — the registry tests
 * double as a contract check that every bench shim has a
 * registered backing experiment.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/spec.hh"

namespace radcrit
{
namespace
{

// ---------------------------------------------------------------
// Registry contents
// ---------------------------------------------------------------

/** Every experiment a bench shim fronts must be registered. */
const char *const kExpectedExperiments[] = {
    "abft_coverage",
    "ablation_filter_threshold",
    "ablation_injection_level",
    "ablation_scheduler",
    "avf_comparison",
    "calibration",
    "detectors",
    "fig1_setup",
    "fig2_dgemm_scatter",
    "fig3_dgemm_locality",
    "fig4_lavamd_scatter",
    "fig5_lavamd_locality",
    "fig6_hotspot_scatter",
    "fig7_hotspot_locality",
    "fig8_clamr_scatter",
    "fig9_clamr_map",
    "hardening",
    "kernel_throughput",
    "mtbf_projection",
    "sdc_crash_ratios",
    "table1_kernels",
    "table2_inputs",
};

TEST(ExperimentRegistry, AllExpectedExperimentsRegistered)
{
    auto &registry = ExperimentRegistry::instance();
    for (const char *name : kExpectedExperiments) {
        Experiment *exp = registry.find(name);
        ASSERT_NE(exp, nullptr) << "missing experiment " << name;
        EXPECT_EQ(exp->info().name, name);
        EXPECT_FALSE(exp->info().tag.empty()) << name;
        EXPECT_FALSE(exp->info().summary.empty()) << name;
        EXPECT_GT(exp->info().defaultRuns, 0u) << name;
    }
    EXPECT_EQ(registry.all().size(),
              std::size(kExpectedExperiments));
}

TEST(ExperimentRegistry, NamesUniqueAndSortedByOrder)
{
    auto all = ExperimentRegistry::instance().all();
    std::set<std::string> names;
    for (size_t i = 0; i < all.size(); ++i) {
        EXPECT_TRUE(names.insert(all[i]->info().name).second)
            << "duplicate name " << all[i]->info().name;
        if (i == 0)
            continue;
        const auto &prev = all[i - 1]->info();
        const auto &cur = all[i]->info();
        EXPECT_TRUE(prev.order < cur.order ||
                    (prev.order == cur.order &&
                     prev.name < cur.name))
            << prev.name << " should sort before " << cur.name;
    }
}

TEST(ExperimentRegistry, FindIsExactMatchOnly)
{
    auto &registry = ExperimentRegistry::instance();
    EXPECT_NE(registry.find("fig2_dgemm_scatter"), nullptr);
    EXPECT_EQ(registry.find("fig2"), nullptr);
    EXPECT_EQ(registry.find("fig2*"), nullptr);
    EXPECT_EQ(registry.find(""), nullptr);
}

TEST(ExperimentRegistry, MatchSelectsByGlob)
{
    auto &registry = ExperimentRegistry::instance();
    EXPECT_EQ(registry.match("fig?_*").size(), 9u);
    EXPECT_EQ(registry.match("ablation_*").size(), 3u);
    EXPECT_EQ(registry.match("table?_*").size(), 2u);
    EXPECT_EQ(registry.match("*").size(),
              std::size(kExpectedExperiments));
    EXPECT_TRUE(registry.match("no_such_experiment_*").empty());
    // Exact names work as globs too (the driver treats every
    // positional the same way).
    auto one = registry.match("calibration");
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0]->info().name, "calibration");
}

class DuplicateOfFig1 : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "fig1_setup", .tag = "dup", .summary = "dup"};
        return info;
    }
    void run(SuiteContext &) override {}
};

TEST(ExperimentRegistryDeathTest, DuplicateRegistrationPanics)
{
    EXPECT_DEATH(ExperimentRegistry::instance().add(
                     std::make_unique<DuplicateOfFig1>()),
                 "duplicate experiment registration");
}

class NamelessExperiment : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "", .tag = "none", .summary = "none"};
        return info;
    }
    void run(SuiteContext &) override {}
};

TEST(ExperimentRegistryDeathTest, EmptyNamePanics)
{
    EXPECT_DEATH(ExperimentRegistry::instance().add(
                     std::make_unique<NamelessExperiment>()),
                 "empty name");
}

// ---------------------------------------------------------------
// Glob matcher
// ---------------------------------------------------------------

TEST(GlobMatch, Literals)
{
    EXPECT_TRUE(globMatch("abc", "abc"));
    EXPECT_FALSE(globMatch("abc", "abd"));
    EXPECT_FALSE(globMatch("abc", "ab"));
    EXPECT_FALSE(globMatch("ab", "abc"));
    EXPECT_TRUE(globMatch("", ""));
    EXPECT_FALSE(globMatch("", "a"));
}

TEST(GlobMatch, QuestionMarkMatchesExactlyOne)
{
    EXPECT_TRUE(globMatch("fig?_setup", "fig1_setup"));
    EXPECT_FALSE(globMatch("fig?_setup", "fig12_setup"));
    EXPECT_FALSE(globMatch("fig?", "fig"));
}

TEST(GlobMatch, StarMatchesAnyRun)
{
    EXPECT_TRUE(globMatch("*", ""));
    EXPECT_TRUE(globMatch("*", "anything"));
    EXPECT_TRUE(globMatch("fig*", "fig2_dgemm_scatter"));
    EXPECT_TRUE(globMatch("*scatter", "fig2_dgemm_scatter"));
    EXPECT_TRUE(globMatch("*dgemm*", "fig2_dgemm_scatter"));
    EXPECT_FALSE(globMatch("*lavamd*", "fig2_dgemm_scatter"));
    // Backtracking: the first '*' must be able to absorb more
    // after a failed literal run.
    EXPECT_TRUE(globMatch("*ab", "aab"));
    EXPECT_TRUE(globMatch("a*b*c", "axxbxxbc"));
    EXPECT_FALSE(globMatch("a*b*c", "axxbxxb"));
    EXPECT_TRUE(globMatch("**", "x"));
}

// ---------------------------------------------------------------
// Campaign dedup key
// ---------------------------------------------------------------

TEST(CampaignPlanKey, IdenticalCampaignsShareOneKey)
{
    EXPECT_EQ(campaignPlanKey("K40", "DGEMM", "2048x2048", 300),
              campaignPlanKey("K40", "DGEMM", "2048x2048", 300));
}

TEST(CampaignPlanKey, EveryFieldDistinguishes)
{
    std::string base =
        campaignPlanKey("K40", "DGEMM", "2048x2048", 300);
    EXPECT_NE(base,
              campaignPlanKey("XeonPhi", "DGEMM", "2048x2048",
                              300));
    EXPECT_NE(base,
              campaignPlanKey("K40", "LavaMD", "2048x2048", 300));
    EXPECT_NE(base,
              campaignPlanKey("K40", "DGEMM", "4096x4096", 300));
    EXPECT_NE(base,
              campaignPlanKey("K40", "DGEMM", "2048x2048", 301));
}

TEST(CampaignPlanKey, FieldShufflingCannotCollide)
{
    // The separator keeps ("ab", "c") distinct from ("a", "bc");
    // naive concatenation would collide.
    EXPECT_NE(campaignPlanKey("ab", "c", "d", 1),
              campaignPlanKey("a", "bc", "d", 1));
    EXPECT_NE(campaignPlanKey("a", "b1", "", 2),
              campaignPlanKey("a", "b", "1", 2));
}

TEST(CampaignPlanKey, RequestSetsDedupAcrossExperiments)
{
    // The canonical request helpers must agree on the key for the
    // same (device, workload, input, runs) so the scheduler can
    // collapse them across experiments.
    auto keys_of = [](const std::vector<CampaignRequest> &reqs) {
        std::set<std::string> keys;
        for (const auto &req : reqs) {
            DeviceModel device = makeDevice(req.device);
            auto workload = buildWorkload(device, req.workload);
            keys.insert(campaignPlanKey(device.name,
                                        workload->name(),
                                        workload->inputLabel(),
                                        req.runs));
        }
        return keys;
    };
    auto dgemm = keys_of(dgemmRequests(100));
    EXPECT_EQ(dgemm.size(), dgemmRequests(100).size())
        << "dgemm requests are not distinct campaigns";
    // A second experiment declaring the same requests adds no new
    // distinct campaigns.
    auto twice = dgemmRequests(100);
    for (const auto &req : dgemmRequests(100))
        twice.push_back(req);
    EXPECT_EQ(keys_of(twice), dgemm);
    // Different run counts are different campaigns.
    auto other = keys_of(dgemmRequests(101));
    for (const auto &key : other)
        EXPECT_EQ(dgemm.count(key), 0u);
}

// ---------------------------------------------------------------
// Output directory resolution
// ---------------------------------------------------------------

class OutputDirTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const char *env = std::getenv("RADCRIT_BENCH_OUT");
        saved_ = env ? env : "";
        hadEnv_ = env != nullptr;
    }

    void
    TearDown() override
    {
        if (hadEnv_)
            setenv("RADCRIT_BENCH_OUT", saved_.c_str(), 1);
        else
            unsetenv("RADCRIT_BENCH_OUT");
    }

  private:
    std::string saved_;
    bool hadEnv_ = false;
};

TEST_F(OutputDirTest, DefaultIsBenchOut)
{
    unsetenv("RADCRIT_BENCH_OUT");
    EXPECT_EQ(resolveOutputDir(""), "bench_out");
}

TEST_F(OutputDirTest, EnvironmentOverridesDefault)
{
    setenv("RADCRIT_BENCH_OUT", "env_dir", 1);
    EXPECT_EQ(resolveOutputDir(""), "env_dir");
}

TEST_F(OutputDirTest, CliValueBeatsEnvironment)
{
    setenv("RADCRIT_BENCH_OUT", "env_dir", 1);
    EXPECT_EQ(resolveOutputDir("cli_dir"), "cli_dir");
}

} // anonymous namespace
} // namespace radcrit
