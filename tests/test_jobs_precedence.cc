/**
 * @file
 * Worker-count configuration precedence: an explicit --jobs flag
 * beats the RADCRIT_JOBS environment variable, which beats the
 * CampaignConfig default of 1 (serial); 0 resolves to one worker
 * per hardware thread at every layer. Also pins the property the
 * whole test suite leans on: a campaign — and therefore every
 * check:: verdict computed from it — is bit-identical at jobs=1,
 * 2, and 8.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/paperconfigs.hh"
#include "campaign/runner.hh"
#include "campaign/series.hh"
#include "check/statcheck.hh"
#include "common/cli.hh"
#include "exec/pool.hh"
#include "kernels/dgemm.hh"

namespace radcrit
{
namespace
{

class JobsEnvTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const char *raw = getenv("RADCRIT_JOBS");
        saved_ = {raw ? raw : "", raw != nullptr};
    }

    void
    TearDown() override
    {
        if (saved_.second)
            setenv("RADCRIT_JOBS", saved_.first.c_str(), 1);
        else
            unsetenv("RADCRIT_JOBS");
    }

  private:
    std::pair<std::string, bool> saved_;
};

TEST_F(JobsEnvTest, EnvUnsetFallsBackToDefault)
{
    unsetenv("RADCRIT_JOBS");
    EXPECT_EQ(WorkerPool::envJobs(1), 1u);
    EXPECT_EQ(WorkerPool::envJobs(3), 3u);
}

TEST_F(JobsEnvTest, EnvValueOverridesDefault)
{
    setenv("RADCRIT_JOBS", "5", 1);
    EXPECT_EQ(WorkerPool::envJobs(1), 5u);
}

TEST_F(JobsEnvTest, EnvZeroMeansAllHardwareThreads)
{
    setenv("RADCRIT_JOBS", "0", 1);
    EXPECT_EQ(WorkerPool::envJobs(1),
              WorkerPool::resolveJobs(0));
}

TEST_F(JobsEnvTest, EnvGarbageFallsBackToDefault)
{
    setenv("RADCRIT_JOBS", "not-a-count", 1);
    EXPECT_EQ(WorkerPool::envJobs(2), 2u);
}

TEST_F(JobsEnvTest, CliFlagBeatsEnv)
{
    // The CLI default is envJobs(1), exactly as radcrit_cli and
    // the bench harnesses set it up: an explicit --jobs wins, and
    // without the flag the environment decides.
    setenv("RADCRIT_JOBS", "2", 1);
    {
        CliParser cli("test");
        cli.addInt("jobs",
                   static_cast<int64_t>(WorkerPool::envJobs(1)),
                   "workers");
        const char *argv[] = {"test", "--jobs", "4"};
        cli.parse(3, argv);
        EXPECT_EQ(cli.getInt("jobs"), 4);
    }
    {
        CliParser cli("test");
        cli.addInt("jobs",
                   static_cast<int64_t>(WorkerPool::envJobs(1)),
                   "workers");
        const char *argv[] = {"test"};
        cli.parse(1, argv);
        EXPECT_EQ(cli.getInt("jobs"), 2);
    }
}

TEST(JobsResolution, ZeroResolvesToHardwareThreads)
{
    unsigned hw = std::thread::hardware_concurrency();
    unsigned resolved = WorkerPool::resolveJobs(0);
    EXPECT_GE(resolved, 1u);
    if (hw != 0)
        EXPECT_EQ(resolved, hw);
    EXPECT_EQ(WorkerPool::resolveJobs(7), 7u);
    EXPECT_EQ(WorkerPool(0).jobs(), resolved);
}

TEST(JobsResolution, CampaignConfigDefaultIsSerial)
{
    EXPECT_EQ(CampaignConfig{}.sim.jobs, 1u);
}

TEST(JobsDeterminism, VerdictsIdenticalAtAnyWorkerCount)
{
    // One small campaign per worker count; rows and statistical
    // verdicts must agree bit-for-bit (this is what lets ctest run
    // the migrated check:: assertions under any -j).
    std::map<unsigned, CampaignResult> results;
    for (unsigned jobs : {1u, 2u, 8u}) {
        DeviceModel device = makeDevice(DeviceId::K40);
        Dgemm workload(device, 64, 42);
        CampaignConfig cfg = defaultCampaign(
            150, device.name, workload.name(),
            workload.inputLabel());
        cfg.sim.jobs = jobs;
        results.emplace(jobs,
                        runCampaign(device, workload, cfg));
    }

    const CampaignResult &serial = results.at(1);
    auto serial_rows = runRows(serial);
    std::vector<std::string> verdicts;
    for (const auto &[jobs, res] : results) {
        EXPECT_EQ(runRows(res), serial_rows)
            << "per-run rows differ at jobs=" << jobs;
        check::CheckResult sdc = check::proportionAtLeast(
            "sdc_share", res.count(Outcome::Sdc),
            res.runs.size(), 0.1, 0.01);
        check::CheckResult ratio = check::ratioAtLeast(
            "sdc_over_detectable", res.count(Outcome::Sdc),
            res.count(Outcome::Crash) +
                res.count(Outcome::Hang),
            1.0, 0.05);
        verdicts.push_back(sdc.message + "\n" + ratio.message);
    }
    EXPECT_EQ(verdicts[0], verdicts[1]);
    EXPECT_EQ(verdicts[0], verdicts[2]);
}

} // anonymous namespace
} // namespace radcrit
