/**
 * @file
 * Metamorphic properties of the metrics layer, checked over
 * generated corrupted-output records:
 *
 *  - the relative-error filter is monotone in its threshold: a
 *    stricter (higher) threshold keeps a subset of what a looser
 *    one keeps, and never un-removes an execution;
 *  - filtering at threshold zero only drops exact-zero relative
 *    errors, and a filtered record re-filtered at the same
 *    threshold is a fixed point;
 *  - locality classification is invariant under permuting the
 *    coordinate axes (it only looks at positions and bounding
 *    boxes, never at which axis is which).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "check/prop.hh"
#include "metrics/filter.hh"
#include "metrics/locality.hh"

namespace radcrit
{
namespace
{

/** Apply an axis permutation to extents and coordinates. */
SdcRecord
permuteAxes(const SdcRecord &record,
            const std::array<int, 3> &perm)
{
    SdcRecord out;
    out.dims = record.dims;
    for (int a = 0; a < 3; ++a)
        out.extent[a] = record.extent[perm[a]];
    out.elements = record.elements;
    for (auto &e : out.elements) {
        std::array<int64_t, 3> c = e.coord;
        for (int a = 0; a < 3; ++a)
            e.coord[a] = c[perm[a]];
    }
    return out;
}

TEST(FilterProps, StricterThresholdKeepsSubset)
{
    auto g = check::gen::pairOf(
        check::gen::gridRecord(2, 16, 24),
        check::gen::pairOf(check::gen::real(0.0, 10.0),
                           check::gen::real(0.0, 10.0)));
    check::PropResult r = check::forAll<
        std::pair<SdcRecord, std::pair<double, double>>>(
        "filter monotone in threshold", g,
        std::function<bool(
            const std::pair<SdcRecord,
                            std::pair<double, double>> &)>(
            [](const std::pair<SdcRecord,
                               std::pair<double, double>> &input) {
                const SdcRecord &rec = input.first;
                double lo =
                    std::min(input.second.first,
                             input.second.second);
                double hi =
                    std::max(input.second.first,
                             input.second.second);
                SdcRecord loose =
                    RelativeErrorFilter(lo).apply(rec);
                SdcRecord strict =
                    RelativeErrorFilter(hi).apply(rec);
                if (strict.numIncorrect() > loose.numIncorrect())
                    return false;
                // Every survivor of the strict filter must also
                // survive the loose one (same order, subset).
                size_t j = 0;
                for (const auto &e : strict.elements) {
                    while (j < loose.elements.size() &&
                           loose.elements[j].coord != e.coord)
                        ++j;
                    if (j == loose.elements.size())
                        return false;
                    ++j;
                }
                // removesExecution is monotone too.
                if (RelativeErrorFilter(lo).removesExecution(
                        rec) &&
                    !RelativeErrorFilter(hi).removesExecution(rec))
                    return false;
                return true;
            }));
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(FilterProps, FilteringIsIdempotent)
{
    auto g = check::gen::pairOf(
        check::gen::gridRecord(2, 16, 24),
        check::gen::real(0.0, 10.0));
    check::PropResult r =
        check::forAll<std::pair<SdcRecord, double>>(
            "filter idempotent", g,
            std::function<bool(
                const std::pair<SdcRecord, double> &)>(
                [](const std::pair<SdcRecord, double> &input) {
                    RelativeErrorFilter f(input.second);
                    SdcRecord once = f.apply(input.first);
                    SdcRecord twice = f.apply(once);
                    return twice.numIncorrect() ==
                        once.numIncorrect();
                }));
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(LocalityProps, ClassInvariantUnderAxisPermutation)
{
    const std::array<std::array<int, 3>, 6> perms{{
        {0, 1, 2},
        {0, 2, 1},
        {1, 0, 2},
        {1, 2, 0},
        {2, 0, 1},
        {2, 1, 0},
    }};
    auto g = check::gen::gridRecord(3, 10, 16);
    check::PropResult r = check::forAll<SdcRecord>(
        "locality axis-permutation invariance", g,
        std::function<bool(const SdcRecord &)>(
            [&perms](const SdcRecord &rec) {
                Pattern base = classifyLocality(rec);
                size_t unique = uniquePositions(rec);
                for (const auto &perm : perms) {
                    SdcRecord p = permuteAxes(rec, perm);
                    if (classifyLocality(p) != base)
                        return false;
                    if (uniquePositions(p) != unique)
                        return false;
                }
                return true;
            }));
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(LocalityProps, FilteredRecordNeverUpgradesBeyondUnfiltered)
{
    // Filtering only removes elements, so the unique-position
    // count can only shrink and an empty result must classify as
    // None.
    auto g = check::gen::pairOf(
        check::gen::gridRecord(2, 16, 24),
        check::gen::real(0.0, 10.0));
    check::PropResult r =
        check::forAll<std::pair<SdcRecord, double>>(
            "filtered locality sane", g,
            std::function<bool(
                const std::pair<SdcRecord, double> &)>(
                [](const std::pair<SdcRecord, double> &input) {
                    RelativeErrorFilter f(input.second);
                    SdcRecord filtered = f.apply(input.first);
                    if (uniquePositions(filtered) >
                        uniquePositions(input.first))
                        return false;
                    if (filtered.empty() &&
                        classifyLocality(filtered) !=
                            Pattern::None)
                        return false;
                    return true;
                }));
    EXPECT_TRUE(r.ok) << r.message;
}

} // anonymous namespace
} // namespace radcrit
