/**
 * @file
 * Tests for the deterministic worker pool: static chunking math,
 * job-count resolution (flag and environment), exactly-once
 * execution, and exception propagation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exec/pool.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{
namespace
{

TEST(ChunkBounds, PartitionsExactlyOnce)
{
    for (uint64_t count : {0ull, 1ull, 7ull, 8ull, 9ull, 100ull}) {
        for (unsigned workers : {1u, 2u, 3u, 8u, 13u}) {
            std::vector<int> hits(count, 0);
            uint64_t expected_begin = 0;
            for (unsigned w = 0; w < workers; ++w) {
                auto [begin, end] =
                    WorkerPool::chunkBounds(count, workers, w);
                EXPECT_EQ(begin, expected_begin);
                EXPECT_LE(begin, end);
                expected_begin = end;
                for (uint64_t i = begin; i < end; ++i)
                    hits[i]++;
            }
            EXPECT_EQ(expected_begin, count);
            for (uint64_t i = 0; i < count; ++i)
                EXPECT_EQ(hits[i], 1) << "index " << i;
        }
    }
}

TEST(ChunkBounds, FirstChunksGetTheRemainder)
{
    // 10 items over 4 workers: 3, 3, 2, 2.
    EXPECT_EQ(WorkerPool::chunkBounds(10, 4, 0),
              (std::pair<uint64_t, uint64_t>{0, 3}));
    EXPECT_EQ(WorkerPool::chunkBounds(10, 4, 1),
              (std::pair<uint64_t, uint64_t>{3, 6}));
    EXPECT_EQ(WorkerPool::chunkBounds(10, 4, 2),
              (std::pair<uint64_t, uint64_t>{6, 8}));
    EXPECT_EQ(WorkerPool::chunkBounds(10, 4, 3),
              (std::pair<uint64_t, uint64_t>{8, 10}));
}

TEST(ChunkBounds, MoreWorkersThanItems)
{
    // Trailing workers get empty ranges.
    auto [b2, e2] = WorkerPool::chunkBounds(2, 5, 2);
    EXPECT_EQ(b2, e2);
    auto [b0, e0] = WorkerPool::chunkBounds(2, 5, 0);
    EXPECT_EQ(e0 - b0, 1u);
}

TEST(ResolveJobs, ZeroSelectsHardware)
{
    EXPECT_GE(WorkerPool::resolveJobs(0), 1u);
    EXPECT_EQ(WorkerPool::resolveJobs(1), 1u);
    EXPECT_EQ(WorkerPool::resolveJobs(7), 7u);
}

TEST(EnvJobs, ReadsEnvironmentWithFallback)
{
    unsetenv("RADCRIT_JOBS");
    EXPECT_EQ(WorkerPool::envJobs(3), 3u);
    setenv("RADCRIT_JOBS", "6", 1);
    EXPECT_EQ(WorkerPool::envJobs(3), 6u);
    // 0 means "all hardware threads" and resolves immediately.
    setenv("RADCRIT_JOBS", "0", 1);
    EXPECT_EQ(WorkerPool::envJobs(3), WorkerPool::resolveJobs(0));
    setenv("RADCRIT_JOBS", "not-a-number", 1);
    EXPECT_EQ(WorkerPool::envJobs(3), 3u);
    unsetenv("RADCRIT_JOBS");
}

class PoolTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PoolTest, EveryIndexRunsExactlyOnce)
{
    const uint64_t count = 1000;
    WorkerPool pool(GetParam());
    std::vector<std::atomic<int>> hits(count);
    pool.forChunks(count, [&](unsigned, uint64_t begin,
                              uint64_t end) {
        for (uint64_t i = begin; i < end; ++i)
            hits[i].fetch_add(1);
    });
    for (uint64_t i = 0; i < count; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_P(PoolTest, WorkerIndicesMatchChunkBounds)
{
    const uint64_t count = 37;
    WorkerPool pool(GetParam());
    auto workers = static_cast<unsigned>(
        std::min<uint64_t>(pool.jobs(), count));
    std::mutex mutex;
    std::vector<std::pair<uint64_t, uint64_t>> seen(workers,
                                                    {0, 0});
    pool.forChunks(count, [&](unsigned worker, uint64_t begin,
                              uint64_t end) {
        std::lock_guard<std::mutex> lock(mutex);
        ASSERT_LT(worker, workers);
        seen[worker] = {begin, end};
    });
    for (unsigned w = 0; w < workers; ++w)
        EXPECT_EQ(seen[w],
                  WorkerPool::chunkBounds(count, workers, w));
}

INSTANTIATE_TEST_SUITE_P(JobCounts, PoolTest,
                         ::testing::Values(1u, 2u, 3u, 8u));

TEST(Pool, ZeroCountRunsNothing)
{
    WorkerPool pool(4);
    bool ran = false;
    pool.forChunks(0,
                   [&](unsigned, uint64_t, uint64_t)
                   { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(Pool, MoreJobsThanItems)
{
    WorkerPool pool(16);
    std::vector<std::atomic<int>> hits(3);
    pool.forChunks(3, [&](unsigned, uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; ++i)
            hits[i].fetch_add(1);
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(PoolStats, WorkersSizedAndItemsAccounted)
{
    for (unsigned jobs : {1u, 4u}) {
        WorkerPool pool(jobs);
        PoolRunStats stats;
        pool.forChunks(100, [](unsigned, uint64_t, uint64_t) {},
                       &stats);
        auto workers = static_cast<unsigned>(
            std::min<uint64_t>(pool.jobs(), 100));
        ASSERT_EQ(stats.workers.size(), workers);
        uint64_t items = 0;
        for (const auto &w : stats.workers)
            items += w.items;
        EXPECT_EQ(items, 100u);
        EXPECT_EQ(stats.busyNs() + stats.idleNs(),
                  stats.wallNs * workers);
        EXPECT_GT(stats.utilization(), 0.0);
        EXPECT_LE(stats.utilization(), 1.0);
    }
}

TEST(PoolStats, SerialPathIsFullyUtilized)
{
    WorkerPool pool(1);
    PoolRunStats stats;
    pool.forChunks(10, [](unsigned, uint64_t, uint64_t) {},
                   &stats);
    ASSERT_EQ(stats.workers.size(), 1u);
    EXPECT_EQ(stats.workers[0].items, 10u);
    EXPECT_EQ(stats.busyNs(), stats.wallNs);
    EXPECT_EQ(stats.idleNs(), 0u);
    EXPECT_DOUBLE_EQ(stats.utilization(), 1.0);
}

TEST(PoolStats, ZeroCountLeavesStatsEmpty)
{
    WorkerPool pool(4);
    PoolRunStats stats;
    stats.wallNs = 123; // must be reset by forChunks
    pool.forChunks(0, [](unsigned, uint64_t, uint64_t) {},
                   &stats);
    EXPECT_TRUE(stats.workers.empty());
    EXPECT_EQ(stats.wallNs, 0u);
    EXPECT_EQ(stats.busyNs(), 0u);
    EXPECT_DOUBLE_EQ(stats.utilization(), 0.0);
}

TEST(Pool, BodyExceptionPropagates)
{
    for (unsigned jobs : {1u, 4u}) {
        WorkerPool pool(jobs);
        EXPECT_THROW(
            pool.forChunks(8,
                           [](unsigned, uint64_t begin, uint64_t) {
                               if (begin == 0)
                                   throw std::runtime_error("boom");
                           }),
            std::runtime_error);
    }
}

TEST(ForDynamic, EveryIndexRunsExactlyOnce)
{
    for (unsigned jobs : {1u, 3u, 8u}) {
        for (uint64_t count : {0u, 1u, 7u, 64u, 1000u}) {
            for (uint64_t grain : {0u, 1u, 3u, 16u, 2000u}) {
                WorkerPool pool(jobs);
                std::vector<std::atomic<int>> hits(count);
                pool.forDynamic(
                    count, grain,
                    [&](unsigned, uint64_t begin, uint64_t end) {
                        for (uint64_t i = begin; i < end; ++i)
                            hits[i].fetch_add(1);
                    });
                for (uint64_t i = 0; i < count; ++i)
                    ASSERT_EQ(hits[i].load(), 1)
                        << "jobs=" << jobs << " count=" << count
                        << " grain=" << grain << " index=" << i;
            }
        }
    }
}

TEST(ForDynamic, ClaimedRangesRespectGrain)
{
    WorkerPool pool(4);
    std::mutex mu;
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    pool.forDynamic(100, 8,
                    [&](unsigned, uint64_t begin, uint64_t end) {
                        std::lock_guard<std::mutex> lock(mu);
                        ranges.emplace_back(begin, end);
                    });
    uint64_t items = 0;
    for (const auto &r : ranges) {
        EXPECT_LT(r.first, r.second);
        EXPECT_LE(r.second - r.first, 8u);
        // Every grain but the last is full-size and starts on a
        // grain boundary (the cursor only hands out whole grains).
        EXPECT_EQ(r.first % 8, 0u);
        items += r.second - r.first;
    }
    EXPECT_EQ(items, 100u);
    EXPECT_EQ(ranges.size(), (100u + 7u) / 8u);
}

TEST(ForDynamic, ChunkStatsCountClaimedGrains)
{
    WorkerPool pool(4);
    PoolRunStats stats;
    pool.forDynamic(100, 8,
                    [](unsigned, uint64_t, uint64_t) {}, &stats);
    uint64_t items = 0;
    uint64_t chunks = 0;
    for (const auto &w : stats.workers) {
        items += w.items;
        chunks += w.chunks;
    }
    EXPECT_EQ(items, 100u);
    EXPECT_EQ(chunks, (100u + 7u) / 8u);
    EXPECT_EQ(stats.busyNs() + stats.idleNs(),
              stats.wallNs * stats.workers.size());
}

TEST(ForDynamic, BodyExceptionPropagatesAndStopsClaims)
{
    for (unsigned jobs : {1u, 4u}) {
        WorkerPool pool(jobs);
        std::atomic<uint64_t> executed{0};
        EXPECT_THROW(
            pool.forDynamic(
                1000, 1,
                [&](unsigned, uint64_t begin, uint64_t) {
                    if (begin == 0)
                        throw std::runtime_error("boom");
                    executed.fetch_add(1);
                }),
            std::runtime_error);
        // The throw fast-forwards the shared cursor: the range is
        // abandoned, not drained.
        EXPECT_LT(executed.load(), 1000u);
    }
}

TEST(PublishPoolStats, EmptyDispatchPublishesNothing)
{
    StatsRegistry reg;
    publishPoolStats(PoolRunStats{}, reg);
    StatsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.find("pool.utilization"), nullptr);
    EXPECT_EQ(snap.find("pool.dispatches"), nullptr);
}

TEST(PublishPoolStats, RealDispatchPublishesBoundedUtilization)
{
    WorkerPool pool(2);
    PoolRunStats stats;
    pool.forDynamic(10, 1,
                    [](unsigned, uint64_t, uint64_t) {}, &stats);
    StatsRegistry reg;
    publishPoolStats(stats, reg);
    StatsSnapshot snap = reg.snapshot();
    ASSERT_NE(snap.find("pool.utilization"), nullptr);
    EXPECT_GE(snap.value("pool.utilization"), 0.0);
    EXPECT_LE(snap.value("pool.utilization"), 1.0);
    EXPECT_EQ(snap.value("pool.dispatches"), 1.0);
    EXPECT_EQ(snap.value("pool.chunks"), 10.0);
}

TEST(PoolStats, EmptyUtilizationIsZeroNotNaN)
{
    PoolRunStats stats;
    EXPECT_DOUBLE_EQ(stats.utilization(), 0.0);
    stats.workers.resize(2); // zero wall: idle pool
    EXPECT_DOUBLE_EQ(stats.utilization(), 0.0);
}

} // anonymous namespace
} // namespace radcrit
