/**
 * @file
 * Tests for the ASCII scatter-plot and stacked-bar renderers.
 */

#include <gtest/gtest.h>

#include "common/figure.hh"
#include "common/logging.hh"

namespace radcrit
{
namespace
{

TEST(ScatterPlotTest, RendersPointsAndLegend)
{
    ScatterPlot p("T", "xs", "ys");
    p.addSeries({"s1", {0.0, 1.0, 2.0}, {0.0, 1.0, 4.0}});
    std::string out = p.toString(40, 10);
    EXPECT_NE(out.find("T"), std::string::npos);
    EXPECT_NE(out.find("s1"), std::string::npos);
    EXPECT_NE(out.find("o"), std::string::npos); // first glyph
    EXPECT_NE(out.find("x: xs"), std::string::npos);
}

TEST(ScatterPlotTest, EmptyPlot)
{
    ScatterPlot p("T", "x", "y");
    EXPECT_NE(p.toString().find("no data"), std::string::npos);
}

TEST(ScatterPlotTest, ClampMarksAxis)
{
    ScatterPlot p("T", "x", "y");
    p.setYClamp(100.0);
    p.addSeries({"s", {1.0}, {1e9}});
    std::string out = p.toString(40, 10);
    // Clamped max is rendered with a trailing '+'.
    EXPECT_NE(out.find("100+"), std::string::npos);
}

TEST(ScatterPlotTest, MismatchedSeriesPanics)
{
    ScatterPlot p("T", "x", "y");
    EXPECT_DEATH(p.addSeries({"bad", {1.0}, {}}), "has 1 xs");
}

TEST(ScatterPlotTest, MultipleSeriesDistinctGlyphs)
{
    ScatterPlot p("T", "x", "y");
    p.addSeries({"a", {0.0}, {0.0}});
    p.addSeries({"b", {10.0}, {10.0}});
    std::string out = p.toString(30, 8);
    EXPECT_NE(out.find("o = a"), std::string::npos);
    EXPECT_NE(out.find("x = b"), std::string::npos);
}

TEST(StackedBarChartTest, RendersBarsAndLegend)
{
    StackedBarChart c("FIT", {"Square", "Line"});
    c.addBar({"1024 All", {2.0, 1.0}});
    c.addBar({"1024 >2%", {1.0, 0.5}});
    std::string out = c.toString(30);
    EXPECT_NE(out.find("1024 All"), std::string::npos);
    EXPECT_NE(out.find("Square"), std::string::npos);
    EXPECT_NE(out.find("#"), std::string::npos);
    EXPECT_NE(out.find("="), std::string::npos);
}

TEST(StackedBarChartTest, WrongSegmentCountPanics)
{
    StackedBarChart c("FIT", {"a", "b"});
    EXPECT_DEATH(c.addBar({"x", {1.0}}), "expects 2");
}

TEST(StackedBarChartTest, EmptyChart)
{
    StackedBarChart c("FIT", {"a"});
    EXPECT_NE(c.toString().find("no bars"), std::string::npos);
}

TEST(StackedBarChartTest, BarLengthProportional)
{
    StackedBarChart c("FIT", {"seg"});
    c.addBar({"big", {10.0}});
    c.addBar({"small", {5.0}});
    std::string out = c.toString(40);
    auto count_in_line = [&](const std::string &label) {
        auto pos = out.find(label);
        auto end = out.find('\n', pos);
        std::string line = out.substr(pos, end - pos);
        return std::count(line.begin(), line.end(), '#');
    };
    EXPECT_GT(count_in_line("big"), count_in_line("small"));
}

} // anonymous namespace
} // namespace radcrit
