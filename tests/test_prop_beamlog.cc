/**
 * @file
 * Property-based tests of the simulate/analyze split:
 *
 *  - beam-log round trip: for arbitrary campaign seeds, on all four
 *    kernels, analyze(parse(write(raw))) is bit-identical to
 *    analyze(raw) — the serialized log loses nothing the analysis
 *    can see;
 *  - analysis purity: analyzeCampaign() is a pure function of
 *    (raw, AnalysisConfig) — re-analysis under arbitrary pairs of
 *    tolerances never mutates the raw campaign, so applying configs
 *    in any order reproduces the same bits.
 *
 * A falsified property prints a RADCRIT_PROPTEST_SEED for replay.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <tuple>
#include <utility>

#include "campaign/paperconfigs.hh"
#include "campaign/runner.hh"
#include "check/prop.hh"
#include "kernels/clamr.hh"
#include "kernels/dgemm.hh"
#include "kernels/hotspot.hh"
#include "kernels/lavamd.hh"
#include "logs/beamlog.hh"

namespace radcrit
{
namespace
{

enum class Wl { Dgemm, LavaMd, HotSpot, Clamr };

std::unique_ptr<Workload>
makeSmall(Wl wl, const DeviceModel &device)
{
    switch (wl) {
      case Wl::Dgemm:
        return std::make_unique<Dgemm>(device, 64, 42);
      case Wl::LavaMd:
        return std::make_unique<LavaMd>(device, 5, 42, 2, 4, 11);
      case Wl::HotSpot:
        return std::make_unique<HotSpot>(device, 64, 64, 42);
      case Wl::Clamr:
        return std::make_unique<Clamr>(device, 64, 64, 42);
    }
    return nullptr;
}

/** Bit-level equality of two double values, NaN-tolerant. */
bool
sameDouble(double a, double b)
{
    return a == b || (std::isnan(a) && std::isnan(b));
}

/** Bit-level equality of everything an analysis produces. */
bool
sameAnalysis(const CampaignResult &a, const CampaignResult &b)
{
    if (a.runs.size() != b.runs.size())
        return false;
    for (size_t i = 0; i < a.runs.size(); ++i) {
        const RunRecord &ra = a.runs[i];
        const RunRecord &rb = b.runs[i];
        if (ra.outcome != rb.outcome ||
            ra.crit.numIncorrect != rb.crit.numIncorrect ||
            ra.crit.pattern != rb.crit.pattern ||
            ra.crit.executionFiltered !=
                rb.crit.executionFiltered ||
            !sameDouble(ra.crit.meanRelErrPct,
                        rb.crit.meanRelErrPct)) {
            return false;
        }
    }
    return sameDouble(a.fitTotalAu(false), b.fitTotalAu(false)) &&
        sameDouble(a.fitTotalAu(true), b.fitTotalAu(true));
}

/** Modest case counts: each case simulates a small campaign. */
check::PropConfig
fixedConfig(uint64_t cases)
{
    check::PropConfig cfg;
    cfg.seed = 20260806;
    cfg.cases = cases;
    return cfg;
}

using Param = std::tuple<DeviceId, Wl>;

class BeamLogPropTest : public ::testing::TestWithParam<Param>
{
  protected:
    void
    SetUp() override
    {
        auto [device_id, wl] = GetParam();
        device_ = makeDevice(device_id);
        workload_ = makeSmall(wl, device_);
    }

    DeviceModel device_;
    std::unique_ptr<Workload> workload_;
};

TEST_P(BeamLogPropTest, RoundTripAnalysisBitIdentical)
{
    check::PropResult r = check::forAll<uint64_t>(
        "beamlog round trip keeps analysis bit-identical",
        check::gen::seed(),
        std::function<bool(const uint64_t &)>(
            [&](const uint64_t &seed) {
                SimConfig cfg;
                cfg.faultyRuns = 8;
                cfg.seed = seed;
                CampaignRaw raw =
                    simulateCampaign(device_, *workload_, cfg);
                std::stringstream ss;
                writeBeamLog(raw, ss);
                CampaignRaw back = readBeamLog(ss);
                AnalysisConfig acfg;
                return sameAnalysis(analyzeCampaign(raw, acfg),
                                    analyzeCampaign(back, acfg));
            }),
        fixedConfig(10));
    EXPECT_TRUE(r.ok) << r.message;
}

TEST_P(BeamLogPropTest, AnalysisIsPureAndOrderIndependent)
{
    SimConfig cfg;
    cfg.faultyRuns = 24;
    cfg.seed = 77;
    CampaignRaw raw = simulateCampaign(device_, *workload_, cfg);

    check::PropResult r = check::forAll<std::pair<double, double>>(
        "re-analysis never disturbs the raw campaign",
        check::gen::pairOf(check::gen::real(0.0, 50.0),
                           check::gen::real(0.0, 50.0)),
        std::function<bool(const std::pair<double, double> &)>(
            [&](const std::pair<double, double> &thresholds) {
                AnalysisConfig first;
                first.filterThresholdPct = thresholds.first;
                AnalysisConfig second;
                second.filterThresholdPct = thresholds.second;
                CampaignResult before =
                    analyzeCampaign(raw, first);
                // An intervening analysis under a different config
                // must leave the next one untouched.
                analyzeCampaign(raw, second);
                CampaignResult after = analyzeCampaign(raw, first);
                return sameAnalysis(before, after);
            }),
        fixedConfig(20));
    EXPECT_TRUE(r.ok) << r.message;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, BeamLogPropTest,
    ::testing::Values(
        Param{DeviceId::K40, Wl::Dgemm},
        Param{DeviceId::XeonPhi, Wl::LavaMd},
        Param{DeviceId::K40, Wl::HotSpot},
        Param{DeviceId::XeonPhi, Wl::Clamr}),
    [](const ::testing::TestParamInfo<Param> &info) {
        switch (std::get<1>(info.param)) {
          case Wl::Dgemm:
            return std::string("Dgemm");
          case Wl::LavaMd:
            return std::string("LavaMd");
          case Wl::HotSpot:
            return std::string("HotSpot");
          case Wl::Clamr:
            return std::string("Clamr");
        }
        return std::string("Unknown");
    });

} // anonymous namespace
} // namespace radcrit
