/**
 * @file
 * Tests for the campaign flight recorder: lane recording, lock-free
 * concurrent writers, campaign integration (one span per run), the
 * recorder's zero-impact guarantee, and the trace-event JSON export.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/runner.hh"
#include "campaign/series.hh"
#include "kernels/dgemm.hh"
#include "obs/timeline.hh"

namespace radcrit
{
namespace
{

CampaignConfig
config(uint64_t runs, unsigned jobs, uint64_t seed = 7)
{
    CampaignConfig cfg;
    cfg.sim.faultyRuns = runs;
    cfg.sim.seed = seed;
    cfg.sim.jobs = jobs;
    return cfg;
}

/** One big string of every runRows() cell, for byte comparison. */
std::string
flattenRows(const CampaignResult &res)
{
    std::string out;
    for (const auto &row : runRows(res)) {
        for (const auto &cell : row) {
            out += cell;
            out += '\x1f';
        }
        out += '\n';
    }
    return out;
}

/** RAII attach/detach so a failing test cannot leak the recorder. */
class ScopedTimeline
{
  public:
    explicit ScopedTimeline(Timeline *tl) : prev_(setTimeline(tl)) {}
    ~ScopedTimeline() { setTimeline(prev_); }

  private:
    Timeline *prev_;
};

TEST(TimelineLaneTest, RecordsSpansAndInstantsInOrder)
{
    Timeline tl;
    TimelineLane &lane = tl.lane(3, "worker 2");
    lane.span("run 0", "run", 100, 50, {{"run", "0"}});
    lane.instant("checkpoint", "campaign", 160);
    lane.span("run 1", "run", 170, 30);

    EXPECT_EQ(lane.tid(), 3u);
    EXPECT_EQ(lane.label(), "worker 2");
    ASSERT_EQ(lane.events().size(), 3u);
    EXPECT_EQ(lane.events()[0].name, "run 0");
    EXPECT_FALSE(lane.events()[0].instant);
    EXPECT_EQ(lane.events()[0].tsNs, 100u);
    EXPECT_EQ(lane.events()[0].durNs, 50u);
    ASSERT_EQ(lane.events()[0].args.size(), 1u);
    EXPECT_EQ(lane.events()[0].args[0].first, "run");
    EXPECT_TRUE(lane.events()[1].instant);
    EXPECT_EQ(lane.busyNs(), 80u);
}

TEST(TimelineLaneTest, LaneIsCreatedOnceLabelFromFirstUse)
{
    Timeline tl;
    TimelineLane &a = tl.lane(1, "worker 0");
    TimelineLane &b = tl.lane(1, "ignored later label");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.label(), "worker 0");
    EXPECT_EQ(tl.lanes().size(), 1u);
}

TEST(TimelineTest, LanesSortedByTidAndEventCountTallies)
{
    Timeline tl;
    tl.lane(5, "worker 4").span("a", "run", 0, 1);
    tl.lane(0, "campaign").span("b", "campaign", 0, 1);
    tl.lane(2, "worker 1").span("c", "run", 0, 1);
    tl.lane(2, "worker 1").span("d", "run", 1, 1);

    auto lanes = tl.lanes();
    ASSERT_EQ(lanes.size(), 3u);
    EXPECT_EQ(lanes[0]->tid(), 0u);
    EXPECT_EQ(lanes[1]->tid(), 2u);
    EXPECT_EQ(lanes[2]->tid(), 5u);
    EXPECT_EQ(tl.eventCount(), 4u);
}

TEST(TimelineTest, NowNsIsMonotonic)
{
    Timeline tl;
    uint64_t a = tl.nowNs();
    uint64_t b = tl.nowNs();
    EXPECT_LE(a, b);
}

// The concurrency contract: each thread owns its lane, so eight
// threads recording simultaneously need no per-event lock. Run
// under TSan via the concurrency label.
TEST(TimelineConcurrency, ParallelWritersOnDistinctLanes)
{
    Timeline tl;
    constexpr unsigned threads = 8;
    constexpr unsigned per_thread = 500;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&tl, t]() {
            TimelineLane &lane =
                tl.lane(t + 1, "worker " + std::to_string(t));
            for (unsigned i = 0; i < per_thread; ++i) {
                lane.span("run " + std::to_string(i), "run",
                          tl.nowNs(), 10,
                          {{"worker", std::to_string(t)}});
            }
        });
    }
    for (auto &thread : pool)
        thread.join();

    EXPECT_EQ(tl.eventCount(), threads * per_thread);
    for (const TimelineLane *lane : tl.lanes()) {
        EXPECT_EQ(lane->events().size(), per_thread);
        // Append-only: per-lane timestamps never go backwards.
        for (size_t i = 1; i < lane->events().size(); ++i) {
            EXPECT_LE(lane->events()[i - 1].tsNs,
                      lane->events()[i].tsNs);
        }
    }
}

TEST(TimelineAttach, SetTimelineReturnsPrevious)
{
    Timeline a, b;
    Timeline *before = setTimeline(&a);
    EXPECT_EQ(timeline(), &a);
    EXPECT_EQ(setTimeline(&b), &a);
    EXPECT_EQ(timeline(), &b);
    EXPECT_EQ(setTimeline(before), &b);
}

TEST(TimelineCampaign, RecordsOneSpanPerRunPlusPhases)
{
    constexpr uint64_t runs = 40;
    Timeline tl;
    ScopedTimeline attach(&tl);
    DeviceModel device = makeK40();
    Dgemm dgemm(device, 64, 42);
    runCampaign(device, dgemm, config(runs, 4));

    // Lane 0 is campaign control flow: simulate + analyze spans.
    auto lanes = tl.lanes();
    ASSERT_GE(lanes.size(), 2u);
    EXPECT_EQ(lanes[0]->tid(), 0u);
    EXPECT_EQ(lanes[0]->label(), "campaign");
    std::vector<std::string> control;
    for (const auto &event : lanes[0]->events())
        control.push_back(event.name);
    EXPECT_NE(std::find(control.begin(), control.end(),
                        "simulate"), control.end());
    EXPECT_NE(std::find(control.begin(), control.end(),
                        "analyze"), control.end());

    // Every simulated run shows up as exactly one "run" span, with
    // its index in the args, spread over the worker lanes.
    std::map<std::string, unsigned> run_spans;
    for (const TimelineLane *lane : lanes) {
        if (lane->tid() == 0)
            continue;
        EXPECT_EQ(lane->label().rfind("worker ", 0), 0u);
        for (const auto &event : lane->events()) {
            if (event.category != "run")
                continue;
            EXPECT_FALSE(event.instant);
            std::string run, kernel, outcome;
            for (const auto &[key, value] : event.args) {
                if (key == "run")
                    run = value;
                else if (key == "kernel")
                    kernel = value;
                else if (key == "outcome")
                    outcome = value;
            }
            EXPECT_EQ(kernel, "DGEMM");
            EXPECT_FALSE(outcome.empty());
            ++run_spans[run];
        }
    }
    EXPECT_EQ(run_spans.size(), runs);
    for (uint64_t i = 0; i < runs; ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(run_spans[std::to_string(i)], 1u);
    }
}

TEST(TimelineCampaign, RecorderDoesNotChangeResults)
{
    DeviceModel device = makeK40();
    Dgemm plain(device, 64, 42);
    CampaignResult base =
        runCampaign(device, plain, config(50, 2));

    Timeline tl;
    ScopedTimeline attach(&tl);
    Dgemm recorded(device, 64, 42);
    CampaignResult res =
        runCampaign(device, recorded, config(50, 2));

    ASSERT_EQ(res.runs.size(), base.runs.size());
    for (size_t i = 0; i < res.runs.size(); ++i)
        EXPECT_EQ(res.runs[i].outcome, base.runs[i].outcome);
    EXPECT_EQ(flattenRows(res), flattenRows(base));
}

TEST(TimelineCampaign, SpanMultisetIsIndependentOfJobs)
{
    auto spans = [](unsigned jobs) {
        Timeline tl;
        ScopedTimeline attach(&tl);
        DeviceModel device = makeK40();
        Dgemm dgemm(device, 64, 42);
        runCampaign(device, dgemm, config(30, jobs));
        std::vector<std::string> out;
        for (const TimelineLane *lane : tl.lanes()) {
            for (const auto &event : lane->events()) {
                if (event.category != "run")
                    continue;
                std::string outcome;
                for (const auto &[key, value] : event.args) {
                    if (key == "outcome")
                        outcome = value;
                }
                out.push_back(event.name + "/" + outcome);
            }
        }
        std::sort(out.begin(), out.end());
        return out;
    };
    EXPECT_EQ(spans(1), spans(4));
}

TEST(TimelineJson, ExportsTraceEventShape)
{
    Timeline tl;
    tl.lane(0, "campaign").span("simulate", "campaign", 1000, 2000,
                                {{"runs", "2"}});
    tl.lane(1, "worker 0").span("run 0", "run", 1100, 300);
    tl.lane(1, "worker 0").instant("note", "campaign", 1500);

    std::ostringstream os;
    tl.writeJson(os);
    std::string json = os.str();

    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find(
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": 1, \"args\": {\"name\": \"worker 0\"}}"),
        std::string::npos);
    // Span: µs timestamps (ns / 1000 with 3 decimals), dur, args.
    EXPECT_NE(json.find(
        "{\"name\": \"simulate\", \"cat\": \"campaign\", "
        "\"ph\": \"X\", \"pid\": 1, \"tid\": 0, \"ts\": 1.000, "
        "\"dur\": 2.000, \"args\": {\"runs\": \"2\"}}"),
        std::string::npos);
    // Instant: thread scope, no dur.
    EXPECT_NE(json.find(
        "{\"name\": \"note\", \"cat\": \"campaign\", \"ph\": "
        "\"i\", \"pid\": 1, \"tid\": 1, \"ts\": 1.500, "
        "\"s\": \"t\"}"),
        std::string::npos);
}

TEST(TimelineJson, EmptyTimelineStillValid)
{
    Timeline tl;
    std::ostringstream os;
    tl.writeJson(os);
    EXPECT_NE(os.str().find("\"traceEvents\": ["),
              std::string::npos);
    EXPECT_NE(os.str().find("\"process_name\""),
              std::string::npos);
}

} // anonymous namespace
} // namespace radcrit
