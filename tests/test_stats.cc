/**
 * @file
 * Tests for the streaming statistics accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/stats.hh"

namespace radcrit
{
namespace
{

TEST(RunningStatTest, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStatTest, KnownSequence)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of the classic sequence is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeEqualsSequential)
{
    Rng rng(5);
    RunningStat whole, a, b;
    for (int i = 0; i < 1000; ++i) {
        double v = rng.normal(3.0, 2.0);
        whole.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
    EXPECT_EQ(a.min(), whole.min());
    EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStatTest, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatTest, ConfidenceShrinksWithSamples)
{
    Rng rng(6);
    RunningStat small, large;
    for (int i = 0; i < 100; ++i)
        small.add(rng.normal());
    for (int i = 0; i < 10000; ++i)
        large.add(rng.normal());
    EXPECT_GT(small.confidenceHalfWidth(),
              large.confidenceHalfWidth());
}

TEST(HistogramTest, BinningAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
}

TEST(HistogramTest, BinEdges)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binLo(3), 3.0);
    EXPECT_DOUBLE_EQ(h.binHi(3), 4.0);
    EXPECT_EQ(h.bins(), 10u);
}

TEST(HistogramTest, EntropyUniformVsPoint)
{
    Histogram flat(0.0, 8.0, 8);
    for (int b = 0; b < 8; ++b)
        flat.add(b + 0.5);
    EXPECT_NEAR(flat.entropyBits(), 3.0, 1e-12);

    Histogram point(0.0, 8.0, 8);
    for (int i = 0; i < 100; ++i)
        point.add(4.2);
    EXPECT_NEAR(point.entropyBits(), 0.0, 1e-12);
}

TEST(HistogramTest, EntropyEmptyIsZero)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_EQ(h.entropyBits(), 0.0);
}

TEST(QuantileTest, MedianAndExtremes)
{
    std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates)
{
    std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(QuantileTest, SingleSample)
{
    std::vector<double> v{7.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.9), 7.0);
}

} // anonymous namespace
} // namespace radcrit
