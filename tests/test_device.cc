/**
 * @file
 * Tests for the K40 and Xeon Phi device models.
 */

#include <gtest/gtest.h>

#include "arch/device.hh"
#include "common/rng.hh"

namespace radcrit
{
namespace
{

TEST(DeviceTest, K40Parameters)
{
    DeviceModel d = makeK40();
    EXPECT_EQ(d.name, "K40");
    EXPECT_EQ(d.schedulerKind, SchedulerKind::Hardware);
    EXPECT_EQ(d.computeUnits, 15u);
    EXPECT_EQ(d.maxThreadsPerUnit, 2048u);
    EXPECT_EQ(d.maxResidentThreads(), 30720u);
    EXPECT_TRUE(d.registerResidencyExposure);
    EXPECT_EQ(d.particlesPerBoxHint, 192u);
    EXPECT_EQ(d.cacheLineBytes, 128u);
    // 30 Mbit register file (paper IV-A).
    EXPECT_DOUBLE_EQ(d.resource(ResourceKind::RegisterFile)
                     .sizeBits, 30.0 * 1024.0 * 1024.0);
}

TEST(DeviceTest, XeonPhiParameters)
{
    DeviceModel d = makeXeonPhi();
    EXPECT_EQ(d.name, "XeonPhi");
    EXPECT_EQ(d.schedulerKind, SchedulerKind::OperatingSystem);
    EXPECT_EQ(d.computeUnits, 57u);
    EXPECT_EQ(d.maxThreadsPerUnit, 4u);
    EXPECT_EQ(d.maxResidentThreads(), 228u);
    EXPECT_FALSE(d.registerResidencyExposure);
    EXPECT_EQ(d.particlesPerBoxHint, 100u);
    EXPECT_EQ(d.cacheLineBytes, 64u);
    // 29184 KB of L2 (paper IV-A).
    EXPECT_DOUBLE_EQ(d.resource(ResourceKind::L2Cache).sizeBits,
                     29184.0 * 1024.0 * 8.0);
    // K40 has SFUs; the Phi does not.
    EXPECT_FALSE(d.hasResource(ResourceKind::Sfu));
    EXPECT_TRUE(d.hasResource(ResourceKind::Interconnect));
}

TEST(DeviceTest, FinFetIsLessSensitivePerBit)
{
    // Paper IV-A: 3-D transistors show ~10x reduced per-bit
    // sensitivity compared to planar.
    EXPECT_NEAR(makeK40().storageSensitivity /
                makeXeonPhi().storageSensitivity, 10.0, 1e-9);
}

TEST(DeviceTest, OutcomeProfilesNormalized)
{
    for (const DeviceModel &d : {makeK40(), makeXeonPhi()}) {
        for (const auto &r : d.resources)
            EXPECT_NEAR(r.outcome.sum(), 1.0, 1e-9)
                << d.name << " " << resourceKindName(r.kind);
    }
}

TEST(DeviceTest, ValidatePassesOnFactories)
{
    EXPECT_NO_FATAL_FAILURE(makeK40().validate());
    EXPECT_NO_FATAL_FAILURE(makeXeonPhi().validate());
}

TEST(DeviceTest, SdcCapableResourcesHaveManifestations)
{
    for (const DeviceModel &d : {makeK40(), makeXeonPhi()}) {
        for (const auto &r : d.resources) {
            if (r.outcome.pSdc > 0.0) {
                EXPECT_FALSE(r.manifestations.empty())
                    << d.name << " "
                    << resourceKindName(r.kind);
            }
        }
    }
}

TEST(DeviceTest, SampleManifestationRespectsWeights)
{
    DeviceModel d = makeK40();
    Rng rng(3);
    // K40 register file manifests only as BitFlipValue.
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(d.sampleManifestation(ResourceKind::RegisterFile,
                                        rng),
                  Manifestation::BitFlipValue);
    }
    // Sfu manifests only as WrongOperation.
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(d.sampleManifestation(ResourceKind::Sfu, rng),
                  Manifestation::WrongOperation);
    }
}

TEST(DeviceTest, SampleManifestationMixture)
{
    DeviceModel d = makeXeonPhi();
    Rng rng(4);
    int stale = 0, line = 0;
    for (int i = 0; i < 2000; ++i) {
        auto m = d.sampleManifestation(ResourceKind::L2Cache, rng);
        stale += m == Manifestation::StaleData;
        line += m == Manifestation::BitFlipInputLine;
    }
    EXPECT_EQ(stale + line, 2000);
    // 70/30 split with sampling noise.
    EXPECT_NEAR(static_cast<double>(stale) / 2000.0, 0.7, 0.05);
}

TEST(DeviceTest, BurstBitsBounded)
{
    DeviceModel k40 = makeK40();
    DeviceModel phi = makeXeonPhi();
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        uint32_t b = k40.sampleBurstBits(rng);
        EXPECT_GE(b, 1u);
        EXPECT_LE(b, k40.maxBurstBits);
    }
    uint32_t phi_max = 0;
    for (int i = 0; i < 1000; ++i)
        phi_max = std::max(phi_max, phi.sampleBurstBits(rng));
    // Phi multi-cell upsets span more bits than the K40's.
    EXPECT_GT(phi.maxBurstBits, k40.maxBurstBits);
    EXPECT_LE(phi_max, phi.maxBurstBits);
}

TEST(DeviceTest, SchedulerKindNames)
{
    EXPECT_STREQ(schedulerKindName(SchedulerKind::Hardware),
                 "Hardware");
    EXPECT_STREQ(schedulerKindName(
                     SchedulerKind::OperatingSystem),
                 "OperatingSystem");
}

TEST(DeviceDeathTest, MissingResourcePanics)
{
    DeviceModel d = makeXeonPhi();
    EXPECT_DEATH(d.resource(ResourceKind::Sfu), "has no resource");
}

} // anonymous namespace
} // namespace radcrit
