/**
 * @file
 * Property-based tests of the four kernel injectors. A Strike
 * generator draws from each device's valid (resource,
 * manifestation) pairs; the properties assert the contract the
 * campaign layer depends on:
 *
 *  - inject-then-restore: injecting arbitrary strikes leaves no
 *    residue, so a fixed reference strike keeps producing its
 *    original record (the scratch output is restored to golden
 *    between runs);
 *  - clone independence: a clone answers every strike identically
 *    to its original, even when their call sequences interleave;
 *  - geometry invariants: records match emptyRecord() geometry,
 *    coordinates stay in bounds, and logged reads genuinely
 *    mismatch.
 *
 * A falsified property prints a RADCRIT_PROPTEST_SEED for replay.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <ostream>
#include <tuple>
#include <utility>
#include <vector>

#include "campaign/paperconfigs.hh"
#include "check/prop.hh"
#include "common/rng.hh"
#include "kernels/clamr.hh"
#include "kernels/dgemm.hh"
#include "kernels/hotspot.hh"
#include "kernels/lavamd.hh"

namespace radcrit
{

// Streamed by the framework when a strike falsifies a property.
static std::ostream &
operator<<(std::ostream &os, const Strike &s)
{
    return os << "Strike{" << resourceKindName(s.resource) << ", "
              << manifestationName(s.manifestation)
              << ", t=" << s.timeFraction
              << ", burst=" << s.burstBits
              << ", entropy=" << s.entropy << "}";
}

namespace
{

enum class Wl { Dgemm, LavaMd, HotSpot, Clamr };

std::unique_ptr<Workload>
makeSmall(Wl wl, const DeviceModel &device)
{
    switch (wl) {
      case Wl::Dgemm:
        return std::make_unique<Dgemm>(device, 64, 42);
      case Wl::LavaMd:
        return std::make_unique<LavaMd>(device, 5, 42, 2, 4, 11);
      case Wl::HotSpot:
        return std::make_unique<HotSpot>(device, 64, 64, 42);
      case Wl::Clamr:
        return std::make_unique<Clamr>(device, 64, 64, 42);
    }
    return nullptr;
}

/**
 * Generator of strikes valid on `device`: every (resource,
 * manifestation) pair the device model declares, any time fraction,
 * bursts of 1-4 bits, arbitrary entropy. Shrinks toward the
 * simplest strike (first pair, t=0, single bit, entropy 0).
 */
check::Gen<Strike>
strikeGen(const DeviceModel &device)
{
    using PoolEntry = std::pair<ResourceKind, Manifestation>;
    auto pool = std::make_shared<std::vector<PoolEntry>>();
    for (const auto &res : device.resources) {
        for (const auto &mw : res.manifestations)
            pool->emplace_back(res.kind, mw.manifestation);
    }
    check::Gen<Strike> g;
    g.sample = [pool](Rng &rng) {
        const PoolEntry &pick =
            (*pool)[rng.uniformInt(pool->size())];
        Strike s;
        s.resource = pick.first;
        s.manifestation = pick.second;
        s.timeFraction = rng.uniform();
        s.burstBits =
            1 + static_cast<uint32_t>(rng.uniformInt(4));
        s.entropy = rng.next64();
        return s;
    };
    g.shrink = [pool](const Strike &s) {
        std::vector<Strike> out;
        if (s.entropy != 0) {
            Strike c = s;
            c.entropy = 0;
            out.push_back(c);
        }
        if (s.burstBits > 1) {
            Strike c = s;
            c.burstBits = 1;
            out.push_back(c);
        }
        if (s.timeFraction != 0.0) {
            Strike c = s;
            c.timeFraction = 0.0;
            out.push_back(c);
        }
        const PoolEntry &front = pool->front();
        if (s.resource != front.first ||
            s.manifestation != front.second) {
            Strike c = s;
            c.resource = front.first;
            c.manifestation = front.second;
            out.push_back(c);
        }
        return out;
    };
    return g;
}

/** Bit-level record equality, tolerating NaN reads. */
bool
sameRecord(const SdcRecord &a, const SdcRecord &b)
{
    if (a.dims != b.dims || a.extent != b.extent ||
        a.elements.size() != b.elements.size())
        return false;
    for (size_t i = 0; i < a.elements.size(); ++i) {
        const auto &ea = a.elements[i];
        const auto &eb = b.elements[i];
        if (ea.coord != eb.coord)
            return false;
        bool read_equal = ea.read == eb.read ||
            (std::isnan(ea.read) && std::isnan(eb.read));
        bool expected_equal = ea.expected == eb.expected ||
            (std::isnan(ea.expected) && std::isnan(eb.expected));
        if (!read_equal || !expected_equal)
            return false;
    }
    return true;
}

using Param = std::tuple<DeviceId, Wl>;

class KernelPropTest : public ::testing::TestWithParam<Param>
{
  protected:
    void
    SetUp() override
    {
        auto [device_id, wl] = GetParam();
        device_ = makeDevice(device_id);
        workload_ = makeSmall(wl, device_);
    }

    DeviceModel device_;
    std::unique_ptr<Workload> workload_;
};

TEST_P(KernelPropTest, InjectLeavesNoResidue)
{
    // The reference strike's record must stay bit-identical no
    // matter which strikes were injected in between: inject() must
    // restore its scratch output to golden after every run.
    Strike ref;
    ref.resource = device_.resources.front().kind;
    ref.manifestation = device_.resources.front()
                            .manifestations.front()
                            .manifestation;
    ref.timeFraction = 0.25;
    ref.burstBits = 2;
    ref.entropy = 7;
    Rng rng(1);
    SdcRecord baseline = workload_->inject(ref, rng);

    check::PropResult r = check::forAll<Strike>(
        "inject leaves no residue", strikeGen(device_),
        std::function<bool(const Strike &)>(
            [&](const Strike &s) {
                Rng a(2), b(3);
                workload_->inject(s, a);
                SdcRecord again = workload_->inject(ref, b);
                return sameRecord(baseline, again);
            }));
    EXPECT_TRUE(r.ok) << r.message;
}

TEST_P(KernelPropTest, CloneAnswersIdentically)
{
    std::unique_ptr<Workload> copy = workload_->clone();
    Rng scramble(17);
    check::Gen<Strike> gen = strikeGen(device_);

    check::PropResult r = check::forAll<Strike>(
        "clone independence", gen,
        std::function<bool(const Strike &, Rng &)>(
            [&](const Strike &s, Rng &aux) {
                // Interleave an unrelated strike on the clone
                // before querying both: shared state would leak.
                Strike noise = gen.sample(aux);
                Rng a(4), b(5), c(6);
                copy->inject(noise, a);
                SdcRecord from_orig = workload_->inject(s, b);
                SdcRecord from_copy = copy->inject(s, c);
                return sameRecord(from_orig, from_copy);
            }));
    EXPECT_TRUE(r.ok) << r.message;
    (void)scramble;
}

TEST_P(KernelPropTest, RecordsHonorGeometry)
{
    SdcRecord shape = workload_->emptyRecord();
    check::PropResult r = check::forAll<Strike>(
        "record geometry", strikeGen(device_),
        std::function<bool(const Strike &)>(
            [&](const Strike &s) {
                Rng a(8);
                SdcRecord rec = workload_->inject(s, a);
                if (rec.dims != shape.dims ||
                    rec.extent != shape.extent)
                    return false;
                for (const auto &e : rec.elements) {
                    for (int axis = 0; axis < 3; ++axis) {
                        if (e.coord[axis] < 0 ||
                            e.coord[axis] >= rec.extent[axis])
                            return false;
                    }
                    if (e.read == e.expected &&
                        !std::isnan(e.read))
                        return false;
                }
                return true;
            }));
    EXPECT_TRUE(r.ok) << r.message;
}

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    auto [device_id, wl] = info.param;
    std::string name = deviceIdName(device_id);
    switch (wl) {
      case Wl::Dgemm: name += "_DGEMM"; break;
      case Wl::LavaMd: name += "_LavaMD"; break;
      case Wl::HotSpot: name += "_HotSpot"; break;
      case Wl::Clamr: name += "_CLAMR"; break;
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelPropTest,
    ::testing::Combine(
        ::testing::Values(DeviceId::K40, DeviceId::XeonPhi),
        ::testing::Values(Wl::Dgemm, Wl::LavaMd, Wl::HotSpot,
                          Wl::Clamr)),
    paramName);

} // anonymous namespace
} // namespace radcrit
