/**
 * @file
 * Tests for relative error and mean relative error (paper metrics
 * 2 and 3).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "metrics/relative_error.hh"

namespace radcrit
{
namespace
{

TEST(RelativeErrorTest, PaperFormula)
{
    // "The relative error of a corrupted element that has a value
    // which is ten times the expected will be 900%."
    EXPECT_DOUBLE_EQ(relativeErrorPct(10.0, 1.0), 900.0);
    EXPECT_DOUBLE_EQ(relativeErrorPct(1.02, 1.0),
                     relativeErrorPct(0.98, 1.0));
    EXPECT_NEAR(relativeErrorPct(1.02, 1.0), 2.0, 1e-9);
}

TEST(RelativeErrorTest, ExactMatchIsZero)
{
    EXPECT_DOUBLE_EQ(relativeErrorPct(5.0, 5.0), 0.0);
    EXPECT_DOUBLE_EQ(relativeErrorPct(-3.0, -3.0), 0.0);
    EXPECT_DOUBLE_EQ(relativeErrorPct(0.0, 0.0), 0.0);
}

TEST(RelativeErrorTest, SignMatters)
{
    EXPECT_DOUBLE_EQ(relativeErrorPct(-1.0, 1.0), 200.0);
}

TEST(RelativeErrorTest, ZeroExpectedSentinel)
{
    EXPECT_DOUBLE_EQ(relativeErrorPct(1.0, 0.0),
                     relativeErrorSentinelPct);
}

TEST(RelativeErrorTest, NonFiniteReadsSentinel)
{
    double nan = std::numeric_limits<double>::quiet_NaN();
    double inf = std::numeric_limits<double>::infinity();
    EXPECT_DOUBLE_EQ(relativeErrorPct(nan, 1.0),
                     relativeErrorSentinelPct);
    EXPECT_DOUBLE_EQ(relativeErrorPct(inf, 1.0),
                     relativeErrorSentinelPct);
}

TEST(RelativeErrorTest, CappedAtSentinel)
{
    EXPECT_LE(relativeErrorPct(1e300, 1e-300),
              relativeErrorSentinelPct);
}

TEST(MeanRelativeErrorTest, EmptyRecordIsZero)
{
    SdcRecord rec;
    EXPECT_DOUBLE_EQ(meanRelativeErrorPct(rec), 0.0);
    EXPECT_DOUBLE_EQ(maxRelativeErrorPct(rec), 0.0);
}

TEST(MeanRelativeErrorTest, AveragesElements)
{
    SdcRecord rec;
    rec.elements.push_back({{0, 0, 0}, 1.10, 1.0}); // 10%
    rec.elements.push_back({{0, 1, 0}, 1.30, 1.0}); // 30%
    EXPECT_NEAR(meanRelativeErrorPct(rec), 20.0, 1e-9);
    EXPECT_NEAR(maxRelativeErrorPct(rec), 30.0, 1e-9);
}

class RelErrSymmetryTest
    : public ::testing::TestWithParam<double>
{
};

TEST_P(RelErrSymmetryTest, ScaleInvariance)
{
    // relative error is invariant under common scaling.
    double scale = GetParam();
    double base = relativeErrorPct(1.2, 1.0);
    EXPECT_NEAR(relativeErrorPct(1.2 * scale, 1.0 * scale), base,
                1e-9 * base);
}

INSTANTIATE_TEST_SUITE_P(Scales, RelErrSymmetryTest,
                         ::testing::Values(1e-6, 0.5, 3.0, 1e6,
                                           -2.0));

} // anonymous namespace
} // namespace radcrit
