/**
 * @file
 * Tests for the JSON rendering helpers: escaping of control and
 * metacharacters, non-finite number handling, empty and nested
 * objects, and misuse of the object writer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "obs/json.hh"

namespace radcrit
{
namespace
{

TEST(JsonEscape, EscapesQuotesBackslashesAndWhitespace)
{
    EXPECT_EQ(jsonEscape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("line1\nline2"), "line1\\nline2");
    EXPECT_EQ(jsonEscape("cr\rtab\t"), "cr\\rtab\\t");
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape(""), "");
}

TEST(JsonEscape, ControlCharactersBecomeUnicodeEscapes)
{
    EXPECT_EQ(jsonEscape("\x01"), "\\u0001");
    EXPECT_EQ(jsonEscape(std::string(1, '\0')), "\\u0000");
    EXPECT_EQ(jsonEscape("\x1f"), "\\u001f");
    EXPECT_EQ(jsonEscape("a\x02z"), "a\\u0002z");
    // 0x20 and above pass through.
    EXPECT_EQ(jsonEscape(" ~"), " ~");
}

TEST(JsonNum, NonFiniteValuesRenderAsZero)
{
    EXPECT_EQ(jsonNum(std::nan("")), "0");
    EXPECT_EQ(jsonNum(std::numeric_limits<double>::infinity()),
              "0");
    EXPECT_EQ(jsonNum(-std::numeric_limits<double>::infinity()),
              "0");
}

TEST(JsonNum, IntegralValuesDropTheFraction)
{
    EXPECT_EQ(jsonNum(0.0), "0");
    EXPECT_EQ(jsonNum(42.0), "42");
    EXPECT_EQ(jsonNum(-7.0), "-7");
    EXPECT_EQ(jsonNum(1.5), "1.5");
}

TEST(JsonObjectWriterTest, EmptyObjectRendersBraces)
{
    std::ostringstream os;
    {
        JsonObjectWriter obj(os);
    }
    EXPECT_EQ(os.str(), "{}");
}

TEST(JsonObjectWriterTest, FieldsAreCommaSeparatedAndEscaped)
{
    std::ostringstream os;
    {
        JsonObjectWriter obj(os);
        obj.field("name", "va\"lue");
        obj.field("count", uint64_t{3});
        obj.field("ratio", 0.5);
    }
    EXPECT_EQ(os.str(),
              "{\n  \"name\": \"va\\\"lue\",\n  \"count\": 3,\n"
              "  \"ratio\": 0.5\n}");
}

TEST(JsonObjectWriterTest, NestedWritersIndentAndClose)
{
    std::ostringstream os;
    {
        JsonObjectWriter obj(os);
        obj.field("a", uint64_t{1});
        obj.beginRawField("inner");
        {
            JsonObjectWriter inner(os, 4);
            inner.field("b", uint64_t{2});
        }
        obj.field("c", uint64_t{3});
    }
    EXPECT_EQ(os.str(),
              "{\n  \"a\": 1,\n  \"inner\": {\n    \"b\": 2\n  },"
              "\n  \"c\": 3\n}");
}

TEST(JsonObjectWriterTest, CloseIsIdempotent)
{
    std::ostringstream os;
    JsonObjectWriter obj(os);
    obj.field("x", uint64_t{1});
    obj.close();
    obj.close();
    EXPECT_EQ(os.str(), "{\n  \"x\": 1\n}");
}

TEST(JsonObjectWriterDeath, FieldAfterCloseIsAPanic)
{
    std::ostringstream os;
    JsonObjectWriter obj(os);
    obj.close();
    EXPECT_DEATH(obj.field("late", uint64_t{1}),
                 "field 'late' added after close");
}

} // anonymous namespace
} // namespace radcrit
