/**
 * @file
 * Tests for the HotSpot stencil workload: dynamics, dissipation and
 * injection behaviour (paper Section V-C).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "kernels/hotspot.hh"
#include "metrics/criticality.hh"
#include "metrics/relative_error.hh"

namespace radcrit
{
namespace
{

class HotSpotTest : public ::testing::Test
{
  protected:
    DeviceModel device_ = makeK40();
    HotSpot hotspot_{device_, 64, 96, 42};
};

TEST_F(HotSpotTest, Geometry)
{
    EXPECT_EQ(hotspot_.grid(), 64);
    EXPECT_EQ(hotspot_.iterations(), 96);
    EXPECT_EQ(hotspot_.goldenTemp().size(), 64u * 64u);
    EXPECT_EQ(hotspot_.inputLabel(), "256x256");
}

TEST_F(HotSpotTest, GoldenIsFiniteAndPhysical)
{
    for (float t : hotspot_.goldenTemp()) {
        EXPECT_TRUE(std::isfinite(t));
        EXPECT_GT(t, HotSpot::ambient);
        EXPECT_LT(t, 1000.0f);
    }
}

TEST_F(HotSpotTest, StepMovesTowardEquilibrium)
{
    // Starting from the golden state, further iterations change
    // the field less and less ("results tend to reach an
    // equilibrium").
    std::vector<float> cur = hotspot_.goldenTemp();
    std::vector<float> nxt(cur.size());
    auto delta = [&](const std::vector<float> &a,
                     const std::vector<float> &b) {
        double d = 0.0;
        for (size_t i = 0; i < a.size(); ++i)
            d += std::abs(static_cast<double>(a[i]) - b[i]);
        return d;
    };
    hotspot_.step(cur, nxt);
    double d1 = delta(cur, nxt);
    std::vector<float> nxt2(cur.size());
    for (int it = 0; it < 50; ++it) {
        hotspot_.step(cur, nxt);
        cur.swap(nxt);
    }
    hotspot_.step(cur, nxt2);
    EXPECT_LT(delta(cur, nxt2), d1);
}

TEST_F(HotSpotTest, PerturbationDissipates)
{
    // Inject early vs late: the early strike's corruption has more
    // iterations to dissipate, so its relative error vs the number
    // of elements is milder — the paper's core stencil finding.
    Rng rng(1);
    Strike s;
    s.resource = ResourceKind::L1Cache;
    s.manifestation = Manifestation::BitFlipValue;
    s.burstBits = 1;

    double early_max = 0.0, late_max = 0.0;
    for (int i = 0; i < 12; ++i) {
        s.entropy = 1000 + i;
        s.timeFraction = 0.05;
        SdcRecord early = hotspot_.inject(s, rng);
        s.timeFraction = 0.95;
        SdcRecord late = hotspot_.inject(s, rng);
        early_max = std::max(early_max,
                             maxRelativeErrorPct(early));
        late_max = std::max(late_max, maxRelativeErrorPct(late));
    }
    EXPECT_LT(early_max, late_max + 1e-9);
}

TEST_F(HotSpotTest, ErrorsSpreadAsSquares)
{
    Rng rng(2);
    Strike s;
    s.resource = ResourceKind::SharedMemory;
    s.manifestation = Manifestation::BitFlipValue;
    s.timeFraction = 0.3;
    s.burstBits = 1;
    int squares = 0, total = 0;
    for (int i = 0; i < 20; ++i) {
        s.entropy = rng.next64();
        SdcRecord rec = hotspot_.inject(s, rng);
        if (rec.numIncorrect() < 4)
            continue;
        ++total;
        Pattern p = classifyLocality(rec);
        squares += p == Pattern::Square;
        // Paper: HotSpot shows only square and line errors.
        EXPECT_TRUE(p == Pattern::Square || p == Pattern::Line)
            << patternName(p);
    }
    ASSERT_GT(total, 5);
    EXPECT_GT(squares, total / 2);
}

TEST_F(HotSpotTest, MeanRelativeErrorStaysLow)
{
    // Paper Fig. 6: mean relative error below 25% in all cases.
    Rng rng(3);
    Strike s;
    s.manifestation = Manifestation::WrongOperation;
    s.resource = ResourceKind::Fpu;
    for (int i = 0; i < 10; ++i) {
        s.entropy = rng.next64();
        s.timeFraction = rng.uniform();
        SdcRecord rec = hotspot_.inject(s, rng);
        if (rec.empty())
            continue;
        EXPECT_LT(meanRelativeErrorPct(rec), 25.0);
    }
}

TEST_F(HotSpotTest, PhiL2LinesSpreadFurther)
{
    DeviceModel phi = makeXeonPhi();
    HotSpot on_phi(phi, 64, 96, 42);
    Rng rng(4);
    Strike s;
    s.manifestation = Manifestation::BitFlipInputLine;
    s.resource = ResourceKind::L2Cache;
    s.timeFraction = 0.3;
    s.burstBits = 2;
    double k40_mean = 0.0, phi_mean = 0.0;
    int n = 12;
    for (int i = 0; i < n; ++i) {
        s.entropy = 500 + i;
        k40_mean += static_cast<double>(
            hotspot_.inject(s, rng).numIncorrect());
        phi_mean += static_cast<double>(
            on_phi.inject(s, rng).numIncorrect());
    }
    // Paper V-C: the Phi shows a greater tendency to multiple
    // errors (longer L2 line residency).
    EXPECT_GT(phi_mean, k40_mean);
}

TEST_F(HotSpotTest, SkippedChunkIsMild)
{
    Rng rng(5);
    Strike s;
    s.manifestation = Manifestation::SkippedChunk;
    s.resource = ResourceKind::Dispatcher;
    s.timeFraction = 0.5;
    s.entropy = 31;
    SdcRecord rec = hotspot_.inject(s, rng);
    if (!rec.empty()) {
        EXPECT_LT(meanRelativeErrorPct(rec), 5.0);
    }
}

TEST_F(HotSpotTest, DeterministicPerStrike)
{
    Strike s;
    s.manifestation = Manifestation::MisscheduledBlock;
    s.resource = ResourceKind::Scheduler;
    s.timeFraction = 0.4;
    s.entropy = 2024;
    Rng r1(6), r2(6);
    SdcRecord a = hotspot_.inject(s, r1);
    SdcRecord b = hotspot_.inject(s, r2);
    ASSERT_EQ(a.numIncorrect(), b.numIncorrect());
    for (size_t i = 0; i < a.elements.size(); ++i)
        EXPECT_EQ(a.elements[i].read, b.elements[i].read);
}

TEST_F(HotSpotTest, HighOccupancyTraits)
{
    // Paper IV-B: HotSpot achieves the highest occupancy among
    // the tested codes (small local-memory footprint).
    EXPECT_LT(hotspot_.traits().perBlockLocalBytes, 4096u);
    EXPECT_FALSE(hotspot_.traits().doublePrecision);
    EXPECT_LT(hotspot_.traits().crashExposure, 0.5);
}

TEST(HotSpotDeathTest, BadConfigFatal)
{
    DeviceModel d = makeK40();
    EXPECT_EXIT(HotSpot(d, 63), ::testing::ExitedWithCode(1),
                "multiple");
    EXPECT_EXIT(HotSpot(d, 64, 2), ::testing::ExitedWithCode(1),
                "at least 8");
}

} // anonymous namespace
} // namespace radcrit
