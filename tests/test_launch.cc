/**
 * @file
 * Tests for occupancy, scheduler strain and register exposure —
 * the paper's Section V-A parallelism-management effects.
 */

#include <gtest/gtest.h>

#include "arch/device.hh"
#include "exec/launch.hh"

namespace radcrit
{
namespace
{

WorkloadTraits
simpleTraits(uint64_t threads, uint64_t block_threads = 256,
             uint64_t local_bytes = 0)
{
    WorkloadTraits t;
    t.name = "toy";
    t.totalThreads = threads;
    t.blockThreads = block_threads;
    t.perBlockLocalBytes = local_bytes;
    t.flopsPerThread = 100.0;
    t.setUtil(ResourceKind::RegisterFile, 1.0);
    return t;
}

TEST(LaunchTest, SmallLaunchFullyResident)
{
    DeviceModel d = makeK40();
    KernelLaunch l = buildLaunch(d, simpleTraits(1000));
    EXPECT_EQ(l.residentThreads, 1000u);
    EXPECT_DOUBLE_EQ(l.waves, 1.0);
    EXPECT_DOUBLE_EQ(l.registerExposure, 1.0);
}

TEST(LaunchTest, CapacityLimitsResidency)
{
    DeviceModel d = makeK40();
    KernelLaunch l = buildLaunch(d, simpleTraits(1000000));
    EXPECT_EQ(l.residentThreads, d.maxResidentThreads());
    EXPECT_GT(l.waves, 30.0);
}

TEST(LaunchTest, ScratchpadLimitsOccupancy)
{
    DeviceModel d = makeK40();
    // 24 KB per 256-thread block: only 2 blocks fit in 48 KB.
    KernelLaunch l = buildLaunch(
        d, simpleTraits(1000000, 256, 24 * 1024));
    EXPECT_EQ(l.residentThreads, 2u * 256u * d.computeUnits);
    EXPECT_NEAR(l.occupancy, 0.25, 1e-9);
}

TEST(LaunchTest, PhiIgnoresScratchpad)
{
    DeviceModel d = makeXeonPhi();
    KernelLaunch l = buildLaunch(
        d, simpleTraits(1000000, 256, 1024 * 1024));
    EXPECT_EQ(l.residentThreads, d.maxResidentThreads());
}

TEST(LaunchTest, HardwareStrainGrowsWithThreads)
{
    // Paper V-A reason (1): hardware scheduler strain grows with
    // the number of managed threads.
    DeviceModel d = makeK40();
    double prev = 0.0;
    for (uint64_t threads : {16384u, 65536u, 262144u, 1048576u}) {
        KernelLaunch l = buildLaunch(d, simpleTraits(threads));
        EXPECT_GT(l.schedulerStrain, prev);
        prev = l.schedulerStrain;
    }
}

TEST(LaunchTest, OsStrainNearlyFlat)
{
    // Paper V-A: the Phi's OS scheduling barely reacts to thread
    // count (1.8x over a 64x thread increase).
    DeviceModel d = makeXeonPhi();
    double lo = buildLaunch(d, simpleTraits(16384)).schedulerStrain;
    double hi = buildLaunch(d, simpleTraits(16384 * 64))
        .schedulerStrain;
    EXPECT_LT(hi / lo, 2.2);
    EXPECT_GT(hi / lo, 1.0);
}

TEST(LaunchTest, HardwareStrainOutpacesOs)
{
    DeviceModel k40 = makeK40();
    DeviceModel phi = makeXeonPhi();
    double k40_growth =
        buildLaunch(k40, simpleTraits(1048576)).schedulerStrain /
        buildLaunch(k40, simpleTraits(16384)).schedulerStrain;
    double phi_growth =
        buildLaunch(phi, simpleTraits(1048576)).schedulerStrain /
        buildLaunch(phi, simpleTraits(16384)).schedulerStrain;
    EXPECT_GT(k40_growth, 3.0 * phi_growth);
}

TEST(LaunchTest, RegisterExposureOnlyOnK40)
{
    // Paper V-A reason (2): waiting threads' data sits in K40
    // registers; the Phi parks waiting work in DRAM.
    WorkloadTraits t = simpleTraits(1000000);
    EXPECT_GT(buildLaunch(makeK40(), t).registerExposure, 1.5);
    EXPECT_DOUBLE_EQ(buildLaunch(makeXeonPhi(), t)
                     .registerExposure, 1.0);
}

TEST(LaunchTest, RegisterExposureSaturates)
{
    DeviceModel d = makeK40();
    double big = buildLaunch(d, simpleTraits(100000000))
        .registerExposure;
    EXPECT_LE(big, 9.0 + 1e-9);
}

class StrainMonotoneTest
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(StrainMonotoneTest, StrainAtLeastFloor)
{
    DeviceModel d = makeK40();
    KernelLaunch l = buildLaunch(d, simpleTraits(GetParam()));
    EXPECT_GE(l.schedulerStrain, 0.25);
    EXPECT_GE(l.waves, 1.0);
    EXPECT_GT(l.durationAu, 0.0);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, StrainMonotoneTest,
                         ::testing::Values(1, 100, 10000, 1000000,
                                           100000000));

TEST(LaunchDeathTest, ZeroThreadsPanics)
{
    DeviceModel d = makeK40();
    WorkloadTraits t = simpleTraits(0);
    EXPECT_DEATH(buildLaunch(d, t), "zero threads");
}

} // anonymous namespace
} // namespace radcrit
