/**
 * @file
 * Tests for AVF estimation and the fault-injector coverage study
 * (paper Section IV-D).
 */

#include <gtest/gtest.h>

#include "avf/avf.hh"
#include "kernels/dgemm.hh"
#include "kernels/lavamd.hh"

namespace radcrit
{
namespace
{

CampaignResult
campaign(const DeviceModel &device, Workload &w,
         uint64_t runs = 300)
{
    CampaignConfig cfg;
    cfg.sim.faultyRuns = runs;
    cfg.sim.seed = 13;
    return runCampaign(device, w, cfg);
}

TEST(AvfTest, BoundsAndOrdering)
{
    DeviceModel device = makeK40();
    Dgemm dgemm(device, 128, 42);
    auto avfs = computeAvf(campaign(device, dgemm));
    ASSERT_FALSE(avfs.empty());
    uint64_t strikes = 0;
    for (const auto &r : avfs) {
        strikes += r.strikes;
        EXPECT_GE(r.avfAny, 0.0);
        EXPECT_LE(r.avfAny, 1.0);
        // Nesting: critical <= sdc <= any.
        EXPECT_LE(r.avfCritical, r.avfSdc + 1e-12);
        EXPECT_LE(r.avfSdc, r.avfAny + 1e-12);
    }
    EXPECT_EQ(strikes, 300u);
}

TEST(AvfTest, StorageAvfReflectsOutcomeProfile)
{
    // Register-file upsets on the K40 almost always become SDCs
    // for DGEMM (crashExposure 1, pSdc 0.92).
    DeviceModel device = makeK40();
    Dgemm dgemm(device, 128, 42);
    auto avfs = computeAvf(campaign(device, dgemm, 500));
    for (const auto &r : avfs) {
        if (r.resource != ResourceKind::RegisterFile)
            continue;
        ASSERT_GT(r.strikes, 50u);
        EXPECT_GT(r.avfSdc, 0.75);
    }
}

TEST(AvfTest, InjectorAccessibility)
{
    // Paper IV-D: schedulers, dispatchers and control logic are
    // inaccessible to software injectors.
    EXPECT_TRUE(injectorAccessible(ResourceKind::RegisterFile));
    EXPECT_TRUE(injectorAccessible(ResourceKind::SharedMemory));
    EXPECT_TRUE(injectorAccessible(ResourceKind::L2Cache));
    EXPECT_FALSE(injectorAccessible(ResourceKind::Scheduler));
    EXPECT_FALSE(injectorAccessible(ResourceKind::Dispatcher));
    EXPECT_FALSE(injectorAccessible(ResourceKind::ControlLogic));
    EXPECT_FALSE(injectorAccessible(ResourceKind::Sfu));
}

TEST(AvfTest, CoverageFractionsBounded)
{
    DeviceModel device = makeXeonPhi();
    LavaMd lava(device, 6, 42, 2, 4, 13);
    InjectorCoverage cov =
        injectorCoverage(campaign(device, lava));
    for (double f : {cov.strikeCoverage, cov.sdcCoverage,
                     cov.criticalFitCoverage,
                     cov.detectableCoverage}) {
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.0);
    }
}

TEST(AvfTest, InjectorMissesCrashSources)
{
    // Crashes come mostly from scheduler/control logic, which an
    // injector cannot strike: its crash coverage must be far below
    // its SDC coverage on the K40.
    DeviceModel device = makeK40();
    Dgemm dgemm(device, 128, 42);
    InjectorCoverage cov =
        injectorCoverage(campaign(device, dgemm, 500));
    EXPECT_GT(cov.sdcCoverage, 0.5);
    EXPECT_LT(cov.detectableCoverage, cov.sdcCoverage);
}

TEST(AvfTest, InjectorMissesK40LavamdCriticality)
{
    // K40 LavaMD critical errors are dominated by SFU/FPU logic
    // (paper V-E hypothesis): an injector-only study would
    // underestimate them substantially.
    DeviceModel device = makeK40();
    LavaMd lava(device, 7, 42, 2, 4, 15);
    InjectorCoverage cov =
        injectorCoverage(campaign(device, lava, 500));
    EXPECT_LT(cov.criticalFitCoverage, 0.7);
}

} // anonymous namespace
} // namespace radcrit
