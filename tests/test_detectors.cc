/**
 * @file
 * Tests for the entropy and mass-conservation detectors.
 */

#include <gtest/gtest.h>

#include "abft/detectors.hh"
#include "common/rng.hh"
#include "kernels/hotspot.hh"
#include "sim/fault.hh"

namespace radcrit
{
namespace
{

TEST(EntropyDetectorTest, GoldenFieldPasses)
{
    std::vector<float> golden(1024);
    Rng rng(1);
    for (auto &v : golden)
        v = static_cast<float>(rng.normal(320.0, 10.0));
    EntropyDetector det(golden);
    EXPECT_FALSE(det.detect(golden));
    EXPECT_GT(det.goldenEntropyBits(), 1.0);
}

TEST(EntropyDetectorTest, WidespreadShiftDetected)
{
    std::vector<float> golden(4096);
    Rng rng(2);
    for (auto &v : golden)
        v = static_cast<float>(rng.normal(320.0, 10.0));
    EntropyDetector det(golden, 64, 0.02);
    // Widespread low-magnitude corruption narrows/reshapes the
    // distribution (paper V-C: check entropy, not elements).
    std::vector<float> corrupted = golden;
    for (size_t i = 0; i < corrupted.size(); i += 2)
        corrupted[i] = 320.0f;
    EXPECT_TRUE(det.detect(corrupted));
}

TEST(EntropyDetectorTest, SingleElementBelowThreshold)
{
    std::vector<float> golden(4096);
    Rng rng(3);
    for (auto &v : golden)
        v = static_cast<float>(rng.normal(320.0, 10.0));
    EntropyDetector det(golden, 64, 0.02);
    std::vector<float> corrupted = golden;
    corrupted[5] += 2.0f;
    // One mildly wrong element cannot move the whole entropy.
    EXPECT_FALSE(det.detect(corrupted));
}

TEST(EntropyDetectorTest, EndToEndOnHotSpot)
{
    DeviceModel device = makeK40();
    HotSpot hotspot(device, 64, 96, 42);
    EntropyDetector det(hotspot.goldenTemp(), 64, 0.02);
    EXPECT_FALSE(det.detect(hotspot.goldenTemp()));
}

TEST(EntropyDetectorDeathTest, EmptyGoldenFatal)
{
    std::vector<float> empty;
    EXPECT_EXIT(EntropyDetector det(empty),
                ::testing::ExitedWithCode(1), "non-empty");
}

TEST(MassCheckerTest, ExactMassPasses)
{
    MassChecker mc(1000.0);
    EXPECT_FALSE(mc.detect(1000.0));
    EXPECT_FALSE(mc.detect(1000.0 + 1e-7));
}

TEST(MassCheckerTest, DriftDetected)
{
    MassChecker mc(1000.0, 1e-9);
    EXPECT_TRUE(mc.detect(1000.1));
    EXPECT_TRUE(mc.detect(999.0));
    EXPECT_NEAR(mc.relativeDrift(1001.0), 1e-3, 1e-12);
}

TEST(MassCheckerTest, NanDetected)
{
    MassChecker mc(1000.0);
    EXPECT_TRUE(mc.detect(std::nan("")));
}

TEST(MassCheckerDeathTest, NonPositiveMassFatal)
{
    EXPECT_EXIT(MassChecker(0.0), ::testing::ExitedWithCode(1),
                "positive");
}

} // anonymous namespace
} // namespace radcrit
