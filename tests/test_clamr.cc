/**
 * @file
 * Tests for the CLAMR shallow-water workload: conservation, wave
 * propagation of errors, and the mass-check invariant (paper
 * Section V-D).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "kernels/clamr.hh"
#include "metrics/criticality.hh"

namespace radcrit
{
namespace
{

class ClamrTest : public ::testing::Test
{
  protected:
    DeviceModel device_ = makeXeonPhi();
    Clamr clamr_{device_, 64, 128, 42};
};

TEST_F(ClamrTest, Geometry)
{
    EXPECT_EQ(clamr_.grid(), 64);
    EXPECT_EQ(clamr_.steps(), 128);
    EXPECT_EQ(clamr_.goldenH().size(), 64u * 64u);
    EXPECT_EQ(clamr_.inputLabel(), "256x256 cells");
}

TEST_F(ClamrTest, GoldenStateIsPhysical)
{
    for (double h : clamr_.goldenH()) {
        EXPECT_TRUE(std::isfinite(h));
        EXPECT_GT(h, 0.0);
        EXPECT_LT(h, 50.0);
    }
}

TEST_F(ClamrTest, StepConservesMassExactly)
{
    // Flux-form update with reflective walls: total mass must be
    // conserved to FP rounding at every step.
    SweState cur;
    cur.resize(64 * 64);
    Rng rng(1);
    for (auto &h : cur.h)
        h = rng.uniform(0.5, 5.0);
    for (auto &hu : cur.hu)
        hu = rng.uniform(-1.0, 1.0);
    for (auto &hv : cur.hv)
        hv = rng.uniform(-1.0, 1.0);
    double m0 = Clamr::mass(cur);
    SweState nxt;
    nxt.resize(cur.h.size());
    for (int it = 0; it < 20; ++it) {
        clamr_.step(cur, nxt);
        std::swap(cur, nxt);
        EXPECT_NEAR(Clamr::mass(cur), m0, 1e-7 * m0);
    }
}

TEST_F(ClamrTest, LakeAtRestIsSteady)
{
    // Flat water with no momentum must stay exactly still (the
    // well-balanced sanity check of SWE solvers).
    SweState cur;
    cur.resize(64 * 64);
    for (auto &h : cur.h)
        h = 2.0;
    SweState nxt;
    nxt.resize(cur.h.size());
    clamr_.step(cur, nxt);
    for (size_t i = 0; i < cur.h.size(); ++i) {
        EXPECT_NEAR(nxt.h[i], 2.0, 1e-12);
        EXPECT_NEAR(nxt.hu[i], 0.0, 1e-12);
        EXPECT_NEAR(nxt.hv[i], 0.0, 1e-12);
    }
}

TEST_F(ClamrTest, ErrorsPropagateAsWave)
{
    // Paper Fig. 9: corruption spreads to the neighborhood and
    // propagates as a wave, growing with remaining run time.
    Rng rng(2);
    Strike s;
    s.resource = ResourceKind::Fpu;
    s.manifestation = Manifestation::WrongOperation;
    s.burstBits = 1;
    s.entropy = 9;
    s.timeFraction = 0.25;
    SdcRecord early = clamr_.inject(s, rng);
    s.timeFraction = 0.85;
    SdcRecord late = clamr_.inject(s, rng);
    EXPECT_GT(early.numIncorrect(), late.numIncorrect());
    EXPECT_GT(early.numIncorrect(), 500u);
}

TEST_F(ClamrTest, ErrorsAreSquarePatterns)
{
    // Paper: square errors amount to 99% for CLAMR.
    Rng rng(3);
    Strike s;
    s.resource = ResourceKind::Dispatcher;
    s.manifestation = Manifestation::WrongOperation;
    int square = 0, total = 0;
    for (int i = 0; i < 10; ++i) {
        s.entropy = rng.next64();
        s.timeFraction = rng.uniform(0.2, 0.8);
        SdcRecord rec = clamr_.inject(s, rng);
        if (rec.numIncorrect() < 10)
            continue;
        ++total;
        square += classifyLocality(rec) == Pattern::Square;
    }
    ASSERT_GT(total, 5);
    EXPECT_GE(square, total - 1);
}

TEST_F(ClamrTest, MassCheckDetectsHeightCorruption)
{
    // Height corruption violates the conserved invariant and stays
    // detectable at the end of the run (paper V-D).
    Rng rng(4);
    Strike s;
    s.resource = ResourceKind::Fpu;
    s.manifestation = Manifestation::WrongOperation;
    s.timeFraction = 0.3;
    s.entropy = 21;
    SdcRecord rec = clamr_.inject(s, rng);
    ASSERT_FALSE(rec.empty());
    double drift = std::abs(clamr_.lastInjectedMass() -
                            clamr_.goldenMass()) /
        clamr_.goldenMass();
    EXPECT_GT(drift, 1e-9);
}

TEST_F(ClamrTest, MomentumOnlyCorruptionEvadesMassCheck)
{
    // Momentum corruption leaves the mass invariant intact — the
    // escape path that caps the mass-check coverage at ~82%
    // (paper ref. [4]).
    Rng rng(5);
    Strike s;
    s.resource = ResourceKind::RegisterFile;
    s.manifestation = Manifestation::BitFlipValue;
    s.burstBits = 2;
    bool found_undetected_sdc = false;
    for (int i = 0; i < 40 && !found_undetected_sdc; ++i) {
        s.entropy = rng.next64();
        s.timeFraction = rng.uniform(0.2, 0.8);
        SdcRecord rec = clamr_.inject(s, rng);
        if (rec.empty())
            continue;
        double drift = std::abs(clamr_.lastInjectedMass() -
                                clamr_.goldenMass()) /
            clamr_.goldenMass();
        if (drift < 1e-12)
            found_undetected_sdc = true;
    }
    EXPECT_TRUE(found_undetected_sdc);
}

TEST_F(ClamrTest, AmrSeriesVaries)
{
    // Paper IV-B: CLAMR changes the number of threads between
    // time steps to re-balance the load.
    const auto &series = clamr_.amrCellSeries();
    ASSERT_GT(series.size(), 4u);
    uint64_t base = 64 * 64;
    bool varies = false;
    for (size_t i = 1; i < series.size(); ++i) {
        EXPECT_GE(series[i], base);
        if (series[i] != series[i - 1])
            varies = true;
    }
    EXPECT_TRUE(varies);
}

TEST_F(ClamrTest, ControlHeavyTraits)
{
    EXPECT_GT(clamr_.traits().controlFlowIntensity, 0.5);
    EXPECT_EQ(clamr_.traits().kernelInvocations,
              static_cast<uint64_t>(clamr_.steps()));
    EXPECT_GT(clamr_.traits().util(ResourceKind::ControlLogic),
              0.5);
}

TEST_F(ClamrTest, DeterministicPerStrike)
{
    Strike s;
    s.resource = ResourceKind::L2Cache;
    s.manifestation = Manifestation::BitFlipInputLine;
    s.timeFraction = 0.5;
    s.entropy = 404;
    Rng r1(8), r2(8);
    SdcRecord a = clamr_.inject(s, r1);
    SdcRecord b = clamr_.inject(s, r2);
    ASSERT_EQ(a.numIncorrect(), b.numIncorrect());
    for (size_t i = 0; i < a.elements.size(); ++i)
        EXPECT_EQ(a.elements[i].read, b.elements[i].read);
}

TEST(ClamrDeathTest, BadConfigFatal)
{
    DeviceModel d = makeXeonPhi();
    EXPECT_EXIT(Clamr(d, 60), ::testing::ExitedWithCode(1),
                "multiple of 8");
    EXPECT_EXIT(Clamr(d, 64, 4), ::testing::ExitedWithCode(1),
                "at least 16");
}

} // anonymous namespace
} // namespace radcrit
