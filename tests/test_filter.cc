/**
 * @file
 * Tests for the parameterized relative-error filter (paper
 * Section III).
 */

#include <gtest/gtest.h>

#include "metrics/filter.hh"
#include "metrics/relative_error.hh"

namespace radcrit
{
namespace
{

SdcRecord
threeElementRecord()
{
    SdcRecord rec;
    rec.dims = 2;
    rec.extent = {10, 10, 1};
    rec.elements.push_back({{0, 0, 0}, 1.001, 1.0}); // 0.1%
    rec.elements.push_back({{1, 1, 0}, 1.05, 1.0});  // 5%
    rec.elements.push_back({{2, 2, 0}, 2.0, 1.0});   // 100%
    return rec;
}

TEST(FilterTest, DefaultThresholdIsTwoPercent)
{
    RelativeErrorFilter f;
    EXPECT_DOUBLE_EQ(f.thresholdPct(), 2.0);
}

TEST(FilterTest, DropsOnlySubThresholdElements)
{
    RelativeErrorFilter f(2.0);
    SdcRecord out = f.apply(threeElementRecord());
    ASSERT_EQ(out.numIncorrect(), 2u);
    EXPECT_EQ(out.elements[0].coord[0], 1);
    EXPECT_EQ(out.elements[1].coord[0], 2);
    EXPECT_EQ(out.dims, 2);
    EXPECT_EQ(out.extent[0], 10);
}

TEST(FilterTest, StrictlyGreaterThanThreshold)
{
    // The paper keeps "mismatches with relative errors greater
    // than t%": exactly t% is dropped. Use an exactly
    // representable percentage (1/64 = 1.5625%).
    RelativeErrorFilter f(1.5625);
    SdcRecord rec;
    rec.elements.push_back({{0, 0, 0}, 65.0, 64.0});
    EXPECT_TRUE(f.removesExecution(rec));
    RelativeErrorFilter below(1.5624);
    EXPECT_FALSE(below.removesExecution(rec));
}

TEST(FilterTest, RemovesExecutionWhenAllSmall)
{
    RelativeErrorFilter f(2.0);
    SdcRecord rec;
    rec.elements.push_back({{0, 0, 0}, 1.001, 1.0});
    rec.elements.push_back({{5, 5, 0}, 1.0001, 1.0});
    EXPECT_TRUE(f.removesExecution(rec));
    EXPECT_TRUE(f.apply(rec).empty());
}

TEST(FilterTest, KeepsExecutionWithOneLargeError)
{
    RelativeErrorFilter f(2.0);
    SdcRecord rec = threeElementRecord();
    EXPECT_FALSE(f.removesExecution(rec));
}

TEST(FilterTest, ZeroThresholdKeepsAllMismatches)
{
    RelativeErrorFilter f(0.0);
    SdcRecord out = f.apply(threeElementRecord());
    EXPECT_EQ(out.numIncorrect(), 3u);
}

TEST(FilterTest, HugeThresholdRemovesAll)
{
    RelativeErrorFilter f(1e13);
    EXPECT_TRUE(f.apply(threeElementRecord()).empty());
}

class FilterThresholdSweep
    : public ::testing::TestWithParam<double>
{
};

TEST_P(FilterThresholdSweep, MonotoneInThreshold)
{
    // A larger tolerance never keeps more elements.
    RelativeErrorFilter tight(GetParam());
    RelativeErrorFilter loose(GetParam() * 2.0 + 1.0);
    SdcRecord rec = threeElementRecord();
    EXPECT_GE(tight.apply(rec).numIncorrect(),
              loose.apply(rec).numIncorrect());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FilterThresholdSweep,
                         ::testing::Values(0.0, 0.5, 2.0, 4.0,
                                           50.0, 99.0));

TEST(FilterDeathTest, NegativeThresholdFatal)
{
    EXPECT_EXIT(RelativeErrorFilter(-1.0),
                ::testing::ExitedWithCode(1), "negative");
}

} // anonymous namespace
} // namespace radcrit
