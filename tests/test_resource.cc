/**
 * @file
 * Tests for the resource taxonomy.
 */

#include <gtest/gtest.h>

#include "arch/resource.hh"

namespace radcrit
{
namespace
{

TEST(ResourceTest, NamesRoundTrip)
{
    for (size_t i = 0; i < numResourceKinds; ++i) {
        auto kind = static_cast<ResourceKind>(i);
        EXPECT_EQ(resourceKindFromName(resourceKindName(kind)),
                  kind);
    }
}

TEST(ResourceTest, NamesAreUnique)
{
    std::set<std::string> names;
    for (size_t i = 0; i < numResourceKinds; ++i)
        names.insert(resourceKindName(
            static_cast<ResourceKind>(i)));
    EXPECT_EQ(names.size(), numResourceKinds);
}

TEST(ResourceTest, StorageLogicPartition)
{
    size_t storage = 0, logic = 0;
    for (size_t i = 0; i < numResourceKinds; ++i) {
        auto kind = static_cast<ResourceKind>(i);
        EXPECT_NE(isStorage(kind), isLogic(kind));
        storage += isStorage(kind);
        logic += isLogic(kind);
    }
    EXPECT_EQ(storage + logic, numResourceKinds);
    EXPECT_EQ(storage, 4u); // RF, L1, shared, L2
}

TEST(ResourceTest, StorageKinds)
{
    EXPECT_TRUE(isStorage(ResourceKind::RegisterFile));
    EXPECT_TRUE(isStorage(ResourceKind::L2Cache));
    EXPECT_FALSE(isStorage(ResourceKind::Scheduler));
    EXPECT_TRUE(isLogic(ResourceKind::Sfu));
    EXPECT_TRUE(isLogic(ResourceKind::Interconnect));
}

TEST(ResourceDeathTest, UnknownNameFatal)
{
    EXPECT_EXIT(resourceKindFromName("Bogus"),
                ::testing::ExitedWithCode(1),
                "unknown resource kind");
}

} // anonymous namespace
} // namespace radcrit
