/**
 * @file
 * Tests for the harness-fault injection layer: seeded chaos plans
 * (deterministic, distinct items, spec round-trip), the live
 * ChaosEngine hooks, runGuarded()'s retry/quarantine semantics,
 * the pool watchdog, and end-to-end campaign behavior under
 * transient and permanent injected faults.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign/runner.hh"
#include "campaign/series.hh"
#include "exec/chaos.hh"
#include "exec/pool.hh"
#include "kernels/dgemm.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{
namespace
{

TEST(ChaosPlan, IdenticalParamsYieldIdenticalPlans)
{
    ChaosPlanParams params;
    params.seed = 42;
    params.runs = 300;
    params.throws = 3;
    params.stalls = 2;
    params.corrupts = 1;
    params.attempts = 2;
    ChaosPlan a = makeChaosPlan(params);
    ChaosPlan b = makeChaosPlan(params);
    ASSERT_EQ(a.faults.size(), 6u);
    ASSERT_EQ(a.faults.size(), b.faults.size());
    for (size_t i = 0; i < a.faults.size(); ++i) {
        EXPECT_EQ(a.faults[i].kind, b.faults[i].kind);
        EXPECT_EQ(a.faults[i].item, b.faults[i].item);
        EXPECT_EQ(a.faults[i].attempts, b.faults[i].attempts);
        EXPECT_EQ(a.faults[i].stallNs, b.faults[i].stallNs);
    }

    // The seed moves the plan.
    ChaosPlanParams other = params;
    other.seed = 43;
    ChaosPlan c = makeChaosPlan(other);
    bool differs = false;
    for (size_t i = 0; i < a.faults.size(); ++i)
        differs |= a.faults[i].item != c.faults[i].item;
    EXPECT_TRUE(differs);
}

TEST(ChaosPlan, RunFaultsLandOnDistinctItems)
{
    ChaosPlanParams params;
    params.seed = 7;
    params.runs = 10;
    params.throws = 5;
    params.stalls = 5;
    ChaosPlan plan = makeChaosPlan(params);
    std::set<uint64_t> items;
    for (const ChaosFault &fault : plan.faults) {
        EXPECT_LT(fault.item, params.runs);
        EXPECT_TRUE(items.insert(fault.item).second)
            << "item " << fault.item << " drawn twice";
    }
    EXPECT_EQ(items.size(), 10u);
}

TEST(ChaosPlan, CorruptWritesTakeLeadingOrdinals)
{
    ChaosPlanParams params;
    params.corrupts = 3;
    ChaosPlan plan = makeChaosPlan(params);
    std::vector<uint64_t> ordinals;
    for (const ChaosFault &fault : plan.faults) {
        if (fault.kind == ChaosFaultKind::CorruptWrite)
            ordinals.push_back(fault.item);
    }
    EXPECT_EQ(ordinals, (std::vector<uint64_t>{0, 1, 2}));
}

TEST(ChaosPlan, MorefaultsThanRunsIsFatal)
{
    ChaosPlanParams params;
    params.runs = 3;
    params.throws = 2;
    params.stalls = 2;
    EXPECT_EXIT(makeChaosPlan(params),
                ::testing::ExitedWithCode(1), "run faults");
}

TEST(ChaosPlan, DescribeListsEveryFault)
{
    ChaosPlan plan;
    plan.faults.push_back(
        {ChaosFaultKind::Throw, 16, 2, 0});
    plan.faults.push_back(
        {ChaosFaultKind::CorruptWrite, 0, 1, 0});
    std::string desc = plan.describe();
    EXPECT_NE(desc.find("2 fault(s)"), std::string::npos);
    EXPECT_NE(desc.find("throw@16x2"), std::string::npos);
    EXPECT_NE(desc.find("corrupt-write@0"), std::string::npos);
    EXPECT_EQ(ChaosPlan{}.describe(), "chaos plan: empty");
}

TEST(ChaosSpec, RoundTripsThroughCanonicalString)
{
    ChaosPlanParams params;
    params.seed = 42;
    params.runs = 300;
    params.throws = 3;
    params.stalls = 1;
    params.corrupts = 1;
    params.attempts = 2;
    params.stallNs = 50'000'000;
    std::string spec = chaosSpec(params);
    std::optional<ChaosPlanParams> back = parseChaosSpec(spec);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->seed, params.seed);
    EXPECT_EQ(back->runs, params.runs);
    EXPECT_EQ(back->throws, params.throws);
    EXPECT_EQ(back->stalls, params.stalls);
    EXPECT_EQ(back->corrupts, params.corrupts);
    EXPECT_EQ(back->attempts, params.attempts);
    EXPECT_EQ(back->stallNs, params.stallNs);
}

TEST(ChaosSpec, EmptySpecMeansChaosOff)
{
    EXPECT_FALSE(parseChaosSpec("").has_value());
}

TEST(ChaosSpec, OmittedKeysKeepDefaults)
{
    std::optional<ChaosPlanParams> p =
        parseChaosSpec("throws=2");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->throws, 2u);
    ChaosPlanParams defaults;
    EXPECT_EQ(p->seed, defaults.seed);
    EXPECT_EQ(p->runs, defaults.runs);
    EXPECT_EQ(p->attempts, defaults.attempts);
    EXPECT_EQ(p->stallNs, defaults.stallNs);
}

TEST(ChaosSpec, UnknownKeyIsFatal)
{
    EXPECT_EXIT(parseChaosSpec("bogus=1"),
                ::testing::ExitedWithCode(1), "unknown key");
    EXPECT_EXIT(parseChaosSpec("seed"),
                ::testing::ExitedWithCode(1), "malformed");
    EXPECT_EXIT(parseChaosSpec("seed=banana"),
                ::testing::ExitedWithCode(1), "not a number");
}

TEST(ChaosEngine, ThrowFaultFiresOnPlannedAttemptsOnly)
{
    ChaosPlan plan;
    plan.faults.push_back({ChaosFaultKind::Throw, 5, 2, 0});
    ChaosEngine engine(std::move(plan));

    EXPECT_THROW(engine.onRunAttempt(5, 1), ChaosError);
    EXPECT_THROW(engine.onRunAttempt(5, 2), ChaosError);
    // Attempt 3 is past the fault's budget: the item recovers.
    EXPECT_NO_THROW(engine.onRunAttempt(5, 3));
    // Other items never fire.
    EXPECT_NO_THROW(engine.onRunAttempt(4, 1));
    EXPECT_EQ(engine.thrown(), 2u);
}

TEST(ChaosEngine, FiringDependsOnlyOnItemAndAttempt)
{
    // The same (item, attempt) pair behaves the same no matter how
    // often or in what order the hooks are called — this is what
    // makes injected behavior independent of the worker count.
    ChaosPlan plan;
    plan.faults.push_back({ChaosFaultKind::Throw, 2, 1, 0});
    ChaosEngine engine(std::move(plan));
    EXPECT_NO_THROW(engine.onRunAttempt(0, 1));
    EXPECT_THROW(engine.onRunAttempt(2, 1), ChaosError);
    EXPECT_NO_THROW(engine.onRunAttempt(1, 1));
    EXPECT_THROW(engine.onRunAttempt(2, 1), ChaosError);
    EXPECT_NO_THROW(engine.onRunAttempt(2, 2));
}

TEST(ChaosEngine, CorruptWriteMatchesByOrdinal)
{
    ChaosPlan plan;
    plan.faults.push_back({ChaosFaultKind::CorruptWrite, 1, 1, 0});
    ChaosEngine engine(std::move(plan));
    EXPECT_FALSE(engine.shouldCorruptWrite("store"));
    EXPECT_TRUE(engine.shouldCorruptWrite("store"));
    EXPECT_FALSE(engine.shouldCorruptWrite("checkpoint"));
    EXPECT_EQ(engine.corrupted(), 1u);
}

TEST(ChaosGlobal, SetChaosInstallsAndClears)
{
    EXPECT_EQ(chaos(), nullptr);
    ChaosEngine engine{ChaosPlan{}};
    EXPECT_EQ(setChaos(&engine), nullptr);
    EXPECT_EQ(chaos(), &engine);
    EXPECT_EQ(setChaos(nullptr), &engine);
    EXPECT_EQ(chaos(), nullptr);
}

TEST(RunGuarded, CleanBodySucceedsFirstAttempt)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    unsigned calls = 0;
    GuardReport report =
        runGuarded(policy, [&](unsigned) { ++calls; });
    EXPECT_EQ(report.status, GuardStatus::Ok);
    EXPECT_EQ(report.attempts, 1u);
    EXPECT_EQ(report.retries(), 0u);
    EXPECT_EQ(calls, 1u);
    EXPECT_TRUE(report.error.empty());
}

TEST(RunGuarded, TransientErrorIsRetriedAndAbsorbed)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.backoffBaseNs = 1000; // keep the test fast
    std::vector<unsigned> attempts;
    GuardReport report = runGuarded(policy, [&](unsigned a) {
        attempts.push_back(a);
        if (a < 3)
            throw std::runtime_error("flaky");
    });
    EXPECT_EQ(report.status, GuardStatus::Ok);
    EXPECT_EQ(report.attempts, 3u);
    EXPECT_EQ(report.retries(), 2u);
    EXPECT_EQ(attempts, (std::vector<unsigned>{1, 2, 3}));
}

TEST(RunGuarded, ExhaustedBudgetQuarantinesWithLastError)
{
    RetryPolicy policy;
    policy.maxAttempts = 2;
    policy.backoffBaseNs = 1000;
    GuardReport report = runGuarded(policy, [](unsigned a) {
        throw std::runtime_error(
            "boom attempt " + std::to_string(a));
    });
    EXPECT_EQ(report.status, GuardStatus::Error);
    EXPECT_EQ(report.attempts, 2u);
    EXPECT_EQ(report.error, "boom attempt 2");
}

TEST(RunGuarded, DeadlineOverrunClassifiesAsTimeout)
{
    RetryPolicy policy;
    policy.maxAttempts = 2;
    policy.softDeadlineNs = 1; // any real body overruns this
    policy.backoffBaseNs = 1000;
    GuardReport report = runGuarded(policy, [](unsigned) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(2));
    });
    EXPECT_EQ(report.status, GuardStatus::Timeout);
    EXPECT_EQ(report.attempts, 2u);
}

TEST(RunGuarded, StatusNamesAreStable)
{
    EXPECT_STREQ(guardStatusName(GuardStatus::Ok), "ok");
    EXPECT_STREQ(guardStatusName(GuardStatus::Error), "error");
    EXPECT_STREQ(guardStatusName(GuardStatus::Timeout),
                 "timeout");
}

TEST(WatchdogTest, FlagsItemStuckPastDeadline)
{
    uint64_t before = StatsRegistry::global()
                          .counter("resilience.watchdog.overdue")
                          .value();
    Watchdog dog(2, 5'000'000 /* 5 ms */, 1'000'000 /* 1 ms */);
    dog.beginItem(0, 17);
    // Give the monitor ample margin over deadline + poll interval:
    // it must flag the in-flight item at least once (and only
    // once — re-flagging the same in-flight item would inflate the
    // counter).
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    dog.endItem(0);
    EXPECT_EQ(dog.overdue(), 1u);
    EXPECT_EQ(StatsRegistry::global()
                  .counter("resilience.watchdog.overdue")
                  .value(),
              before + 1);
}

TEST(WatchdogTest, IdleAndFastWorkersAreNeverFlagged)
{
    Watchdog dog(2, 50'000'000 /* 50 ms */, 1'000'000);
    dog.beginItem(0, 3);
    dog.endItem(0); // finished well within the deadline
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(dog.overdue(), 0u);
}

class ChaosCampaignTest : public ::testing::Test
{
  protected:
    void TearDown() override { setChaos(nullptr); }

    CampaignConfig
    config(uint64_t runs, unsigned jobs)
    {
        CampaignConfig cfg;
        cfg.sim.faultyRuns = runs;
        cfg.sim.seed = 7;
        cfg.sim.jobs = jobs;
        return cfg;
    }

    DeviceModel device_ = makeK40();
};

/** One big string of every runRows() cell, for byte comparison. */
std::string
flattenRows(const CampaignResult &res)
{
    std::string out;
    for (const auto &row : runRows(res)) {
        for (const auto &cell : row) {
            out += cell;
            out += '\x1f';
        }
        out += '\n';
    }
    return out;
}

TEST_F(ChaosCampaignTest, TransientFaultsAreAbsorbedBitIdentically)
{
    Dgemm clean(device_, 64, 42);
    CampaignResult base =
        runCampaign(device_, clean, config(40, 2));

    ChaosPlanParams params;
    params.seed = 11;
    params.runs = 40;
    params.throws = 4;
    params.attempts = 2; // below the default budget of 3
    ChaosEngine engine(makeChaosPlan(params));
    setChaos(&engine);
    Dgemm faulty(device_, 64, 42);
    CampaignResult res =
        runCampaign(device_, faulty, config(40, 2));
    setChaos(nullptr);

    EXPECT_EQ(engine.thrown(), 8u); // 4 items x 2 attempts
    EXPECT_EQ(flattenRows(res), flattenRows(base));
    EXPECT_EQ(res.count(Outcome::InfraError), 0u);
    EXPECT_EQ(res.count(Outcome::InfraTimeout), 0u);
    // The absorbed retries are visible in the campaign stats.
    EXPECT_EQ(res.stats.value("resilience.retries"), 8.0);
}

TEST_F(ChaosCampaignTest, PermanentFaultsQuarantinePlannedItems)
{
    ChaosPlanParams params;
    params.seed = 11;
    params.runs = 40;
    params.throws = 3;
    params.attempts = 3; // equals the budget: never succeeds
    ChaosPlan plan = makeChaosPlan(params);
    std::set<uint64_t> doomed;
    for (const ChaosFault &fault : plan.faults)
        doomed.insert(fault.item);

    ChaosEngine engine(plan);
    setChaos(&engine);
    Dgemm dgemm(device_, 64, 42);
    CampaignResult res =
        runCampaign(device_, dgemm, config(40, 4));
    setChaos(nullptr);

    EXPECT_EQ(res.count(Outcome::InfraError), 3u);
    ASSERT_EQ(res.runs.size(), 40u);
    for (uint64_t i = 0; i < res.runs.size(); ++i) {
        if (doomed.count(i)) {
            EXPECT_EQ(res.runs[i].outcome, Outcome::InfraError)
                << "run " << i;
        } else {
            EXPECT_NE(res.runs[i].outcome, Outcome::InfraError)
                << "run " << i;
        }
    }
}

} // anonymous namespace
} // namespace radcrit
