/**
 * @file
 * Tests for the system-level MTBF projection and checkpoint
 * optimization (paper Section I motivation).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "campaign/runner.hh"
#include "kernels/dgemm.hh"
#include "mtbf/projection.hh"

namespace radcrit
{
namespace
{

CampaignResult
campaign(uint64_t runs = 300)
{
    DeviceModel device = makeK40();
    static Dgemm dgemm(device, 128, 42);
    CampaignConfig cfg;
    cfg.sim.faultyRuns = runs;
    cfg.sim.seed = 21;
    return runCampaign(device, dgemm, cfg);
}

TEST(DalyTest, KnownValue)
{
    // sqrt(2 * 0.1 h * 20 h) = 2 h.
    EXPECT_NEAR(dalyInterval(0.1, 20.0), 2.0, 1e-12);
}

TEST(DalyTest, GrowsWithMtbf)
{
    EXPECT_GT(dalyInterval(0.1, 100.0), dalyInterval(0.1, 10.0));
    EXPECT_GT(dalyInterval(0.5, 10.0), dalyInterval(0.1, 10.0));
}

TEST(EfficiencyTest, BoundsAndMonotonicity)
{
    // Efficiency is in (0, 1) and degrades as MTBF shrinks.
    double good = checkpointEfficiency(2.0, 0.1, 0.15, 100.0);
    double bad = checkpointEfficiency(2.0, 0.1, 0.15, 5.0);
    EXPECT_GT(good, 0.0);
    EXPECT_LT(good, 1.0);
    EXPECT_GT(good, bad);
}

TEST(EfficiencyTest, DalyIntervalNearOptimal)
{
    // The Daly interval should beat nearby intervals.
    double mtbf = 30.0, c = 0.1, r = 0.15;
    double opt = dalyInterval(c, mtbf);
    double at_opt = checkpointEfficiency(opt, c, r, mtbf);
    EXPECT_GE(at_opt + 1e-6,
              checkpointEfficiency(opt * 3.0, c, r, mtbf));
    EXPECT_GE(at_opt + 1e-6,
              checkpointEfficiency(opt / 3.0, c, r, mtbf));
}

TEST(ProjectionTest, RatesScaleWithMachine)
{
    CampaignResult res = campaign();
    SystemConfig small;
    small.devices = 1000;
    SystemConfig titan;
    titan.devices = 18688;
    SystemProjection ps = projectToSystem(res, small);
    SystemProjection pt = projectToSystem(res, titan);
    // Same per-device FIT; machine MTBF scales inversely with
    // device count.
    EXPECT_NEAR(ps.deviceSdcFit, pt.deviceSdcFit, 1e-12);
    EXPECT_NEAR(ps.mtbfDetectableHours / pt.mtbfDetectableHours,
                18.688, 0.01);
}

TEST(ProjectionTest, CriticalNeverExceedsRawSdc)
{
    SystemProjection p = projectToSystem(campaign(),
                                         SystemConfig{});
    EXPECT_LE(p.deviceCriticalFit, p.deviceSdcFit);
    EXPECT_GE(p.mtbsCriticalHours, p.mtbsSdcHours);
}

TEST(ProjectionTest, TitanScaleIsDozensOfHours)
{
    // With a plausible absolute anchor, a Titan-scale machine's
    // radiation-induced MTBF lands in the "dozens of hours" range
    // the paper quotes (refs. [18], [41]).
    CampaignResult res = campaign();
    SystemConfig titan;
    titan.devices = 18688;
    titan.fitPerAu = 25.0;
    SystemProjection p = projectToSystem(res, titan);
    double all_failures_mtbf =
        1.0 / (1.0 / p.mtbfDetectableHours +
               1.0 / p.mtbsSdcHours);
    EXPECT_GT(all_failures_mtbf, 1.0);
    EXPECT_LT(all_failures_mtbf, 1000.0);
}

TEST(ProjectionTest, EfficiencyReasonable)
{
    SystemProjection p = projectToSystem(campaign(),
                                         SystemConfig{});
    EXPECT_GT(p.efficiency, 0.5);
    EXPECT_LT(p.efficiency, 1.0);
    EXPECT_GT(p.dalyIntervalHours, 0.0);
}

TEST(ProjectionDeathTest, BadConfigFatal)
{
    CampaignResult res = campaign(50);
    SystemConfig cfg;
    cfg.devices = 0;
    EXPECT_EXIT(projectToSystem(res, cfg),
                ::testing::ExitedWithCode(1), "at least one");
    SystemConfig cfg2;
    cfg2.fitPerAu = 0.0;
    EXPECT_EXIT(projectToSystem(res, cfg2),
                ::testing::ExitedWithCode(1), "anchor");
    EXPECT_EXIT(dalyInterval(0.0, 10.0),
                ::testing::ExitedWithCode(1), "positive");
}

} // anonymous namespace
} // namespace radcrit
