/**
 * @file
 * Tests for the DGEMM workload and its injection hooks.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "kernels/dgemm.hh"
#include "metrics/criticality.hh"
#include "metrics/relative_error.hh"

namespace radcrit
{
namespace
{

class DgemmTest : public ::testing::Test
{
  protected:
    DeviceModel device_ = makeK40();
    Dgemm dgemm_{device_, 128, 42};
};

TEST_F(DgemmTest, GoldenMatchesNaiveMultiply)
{
    int64_t n = dgemm_.n();
    const auto &a = dgemm_.a();
    const auto &b = dgemm_.b();
    const auto &c = dgemm_.goldenC();
    Rng rng(11);
    for (int probe = 0; probe < 50; ++probe) {
        int64_t i = rng.uniformRange(0, n - 1);
        int64_t j = rng.uniformRange(0, n - 1);
        double sum = 0.0;
        for (int64_t k = 0; k < n; ++k)
            sum += a[i * n + k] * b[k * n + j];
        EXPECT_NEAR(c[i * n + j], sum,
                    1e-12 * std::max(1.0, std::abs(sum)));
    }
}

TEST_F(DgemmTest, InputsAreSignBalanced)
{
    double mean = 0.0;
    for (double v : dgemm_.a())
        mean += v;
    mean /= static_cast<double>(dgemm_.a().size());
    EXPECT_LT(std::abs(mean), 0.02);
}

TEST_F(DgemmTest, TraitsMatchTableII)
{
    // Table II: side^2 / 16 threads at paper-equivalent scale.
    int64_t n_eff = 128 * 8;
    EXPECT_EQ(dgemm_.traits().totalThreads,
              static_cast<uint64_t>(n_eff) * n_eff / 16);
    EXPECT_EQ(dgemm_.inputLabel(), "1024x1024");
    EXPECT_DOUBLE_EQ(dgemm_.traits().util(ResourceKind::Sfu), 0.0);
}

TEST_F(DgemmTest, AccumulatorFlipIsSingle)
{
    Rng rng(1);
    Strike s;
    s.resource = ResourceKind::RegisterFile;
    s.manifestation = Manifestation::BitFlipValue;
    s.timeFraction = 0.5;
    s.burstBits = 1;
    for (int i = 0; i < 20; ++i) {
        s.entropy = rng.next64();
        SdcRecord rec = dgemm_.inject(s, rng);
        EXPECT_LE(rec.numIncorrect(), 1u);
        if (!rec.empty()) {
            EXPECT_EQ(classifyLocality(rec), Pattern::Single);
        }
    }
}

TEST_F(DgemmTest, L2LineFlipIsLine)
{
    Rng rng(2);
    Strike s;
    s.resource = ResourceKind::L2Cache;
    s.manifestation = Manifestation::BitFlipInputLine;
    s.timeFraction = 0.0; // full row consumed
    s.burstBits = 1;
    int lines = 0;
    for (int i = 0; i < 20; ++i) {
        s.entropy = rng.next64();
        SdcRecord rec = dgemm_.inject(s, rng);
        if (rec.numIncorrect() < 2)
            continue;
        Pattern p = classifyLocality(rec);
        lines += p == Pattern::Line;
        // A corrupted input line corrupts one row or one column.
        EXPECT_TRUE(p == Pattern::Line || p == Pattern::Single);
    }
    EXPECT_GT(lines, 10);
}

TEST_F(DgemmTest, MisscheduledBlockIsSquare)
{
    Rng rng(3);
    Strike s;
    s.resource = ResourceKind::Scheduler;
    s.manifestation = Manifestation::MisscheduledBlock;
    s.entropy = 99;
    SdcRecord rec = dgemm_.inject(s, rng);
    EXPECT_GT(rec.numIncorrect(), 100u);
    EXPECT_EQ(classifyLocality(rec), Pattern::Square);
}

TEST_F(DgemmTest, WrongOperationIsDenseChunk)
{
    Rng rng(4);
    Strike s;
    s.resource = ResourceKind::Fpu;
    s.manifestation = Manifestation::WrongOperation;
    s.entropy = 7;
    SdcRecord rec = dgemm_.inject(s, rng);
    EXPECT_EQ(rec.numIncorrect(),
              static_cast<size_t>(Dgemm::chunkRows *
                                  Dgemm::chunkCols));
    EXPECT_EQ(classifyLocality(rec), Pattern::Square);
    // Garbage values are far from correct.
    EXPECT_GT(meanRelativeErrorPct(rec), 100.0);
}

TEST_F(DgemmTest, StaleDataIsScattered)
{
    Rng rng(5);
    Strike s;
    s.resource = ResourceKind::L2Cache;
    s.manifestation = Manifestation::StaleData;
    int random_or_square = 0;
    for (int i = 0; i < 10; ++i) {
        s.entropy = rng.next64();
        SdcRecord rec = dgemm_.inject(s, rng);
        EXPECT_GT(rec.numIncorrect(), 0u);
        Pattern p = classifyLocality(rec);
        random_or_square +=
            p == Pattern::Random || p == Pattern::Square;
    }
    EXPECT_GE(random_or_square, 7);
}

TEST_F(DgemmTest, SkippedBlockKeepsPartialSums)
{
    Rng rng(6);
    Strike s;
    s.resource = ResourceKind::Scheduler;
    s.manifestation = Manifestation::SkippedChunk;
    s.timeFraction = 0.0; // nothing accumulated at all
    s.entropy = 11;
    SdcRecord rec = dgemm_.inject(s, rng);
    EXPECT_EQ(rec.numIncorrect(),
              static_cast<size_t>(Dgemm::blockTile *
                                  Dgemm::blockTile));
    for (const auto &e : rec.elements)
        EXPECT_EQ(e.read, 0.0);
}

TEST_F(DgemmTest, InjectionIsDeterministicPerStrike)
{
    Strike s;
    s.resource = ResourceKind::L2Cache;
    s.manifestation = Manifestation::BitFlipInputLine;
    s.timeFraction = 0.3;
    s.entropy = 1234;
    Rng rng1(5), rng2(5);
    SdcRecord r1 = dgemm_.inject(s, rng1);
    SdcRecord r2 = dgemm_.inject(s, rng2);
    ASSERT_EQ(r1.numIncorrect(), r2.numIncorrect());
    for (size_t i = 0; i < r1.elements.size(); ++i) {
        EXPECT_EQ(r1.elements[i].coord, r2.elements[i].coord);
        EXPECT_EQ(r1.elements[i].read, r2.elements[i].read);
    }
}

TEST_F(DgemmTest, MaterializeOutputAppliesRecord)
{
    SdcRecord rec = dgemm_.emptyRecord();
    rec.elements.push_back({{3, 4, 0}, 99.5,
                            dgemm_.goldenC()[3 * 128 + 4]});
    auto out = dgemm_.materializeOutput(rec);
    EXPECT_EQ(out[3 * 128 + 4], 99.5);
    EXPECT_EQ(out[0], dgemm_.goldenC()[0]);
}

TEST(DgemmTraitsTest, PhiLateralDifferences)
{
    DeviceModel phi = makeXeonPhi();
    Dgemm d(phi, 128);
    // DGEMM is compute-bound: tiny LLC liveness on the Phi.
    EXPECT_LT(d.traits().util(ResourceKind::L2Cache), 0.1);
    EXPECT_LT(d.traits().util(ResourceKind::RegisterFile), 0.2);
}

class DgemmTimeSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DgemmTimeSweep, LateStrikesAffectFewerColumns)
{
    DeviceModel device = makeK40();
    Dgemm dgemm(device, 128, 42);
    Strike s;
    s.resource = ResourceKind::L2Cache;
    s.manifestation = Manifestation::BitFlipInputLine;
    s.timeFraction = GetParam();
    s.entropy = 555;
    Rng rng(6);
    SdcRecord rec = dgemm.inject(s, rng);
    auto expected = static_cast<size_t>(
        std::ceil(128.0 * (1.0 - GetParam())));
    EXPECT_LE(rec.numIncorrect(), std::max<size_t>(expected, 1));
}

INSTANTIATE_TEST_SUITE_P(Times, DgemmTimeSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75,
                                           0.95));

TEST(DgemmDeathTest, BadSizeFatal)
{
    DeviceModel d = makeK40();
    EXPECT_EXIT(Dgemm(d, 100), ::testing::ExitedWithCode(1),
                "multiple");
    EXPECT_EXIT(Dgemm(d, 0), ::testing::ExitedWithCode(1),
                "multiple");
}

} // anonymous namespace
} // namespace radcrit
