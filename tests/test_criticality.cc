/**
 * @file
 * Tests for the combined criticality analysis and FIT breakdown.
 */

#include <gtest/gtest.h>

#include "metrics/criticality.hh"

namespace radcrit
{
namespace
{

SdcRecord
mixedRecord()
{
    SdcRecord rec;
    rec.dims = 2;
    rec.extent = {100, 100, 1};
    // Line of three elements on row 4, two of them sub-threshold.
    rec.elements.push_back({{4, 1, 0}, 1.001, 1.0});
    rec.elements.push_back({{4, 2, 0}, 1.005, 1.0});
    rec.elements.push_back({{4, 3, 0}, 2.0, 1.0});
    return rec;
}

TEST(CriticalityTest, UnfilteredMetrics)
{
    CriticalityReport rep = analyzeCriticality(mixedRecord());
    EXPECT_EQ(rep.numIncorrect, 3u);
    EXPECT_EQ(rep.pattern, Pattern::Line);
    EXPECT_NEAR(rep.meanRelErrPct, (0.1 + 0.5 + 100.0) / 3.0,
                1e-6);
    EXPECT_FALSE(rep.executionFiltered);
}

TEST(CriticalityTest, FilterChangesPattern)
{
    // "One execution classified as square may change to line or
    // single when some elements are filtered" — here Line becomes
    // Single.
    CriticalityReport rep = analyzeCriticality(mixedRecord());
    EXPECT_EQ(rep.numIncorrectFiltered, 1u);
    EXPECT_EQ(rep.patternFiltered, Pattern::Single);
    EXPECT_NEAR(rep.meanRelErrFilteredPct, 100.0, 1e-9);
}

TEST(CriticalityTest, FullyFilteredExecution)
{
    SdcRecord rec;
    rec.dims = 2;
    rec.extent = {10, 10, 1};
    rec.elements.push_back({{1, 1, 0}, 1.0001, 1.0});
    CriticalityReport rep = analyzeCriticality(rec);
    EXPECT_TRUE(rep.executionFiltered);
    EXPECT_EQ(rep.patternFiltered, Pattern::None);
    EXPECT_EQ(rep.numIncorrectFiltered, 0u);
}

TEST(CriticalityTest, EmptyRecord)
{
    SdcRecord rec;
    CriticalityReport rep = analyzeCriticality(rec);
    EXPECT_EQ(rep.numIncorrect, 0u);
    EXPECT_EQ(rep.pattern, Pattern::None);
    EXPECT_FALSE(rep.executionFiltered);
}

TEST(CriticalityTest, CustomThreshold)
{
    RelativeErrorFilter f(200.0);
    CriticalityReport rep = analyzeCriticality(mixedRecord(), f);
    EXPECT_TRUE(rep.executionFiltered);
}

TEST(FitBreakdownTest, AccumulatesAndTotals)
{
    FitBreakdown bd;
    bd.add(Pattern::Square, 1.5);
    bd.add(Pattern::Square, 1.5);
    bd.add(Pattern::Line, 2.0);
    EXPECT_DOUBLE_EQ(bd.of(Pattern::Square), 3.0);
    EXPECT_DOUBLE_EQ(bd.of(Pattern::Line), 2.0);
    EXPECT_DOUBLE_EQ(bd.of(Pattern::Cubic), 0.0);
    EXPECT_DOUBLE_EQ(bd.total(), 5.0);
}

TEST(FitBreakdownTest, NoneExcludedFromTotal)
{
    FitBreakdown bd;
    bd.add(Pattern::None, 10.0);
    bd.add(Pattern::Single, 1.0);
    EXPECT_DOUBLE_EQ(bd.total(), 1.0);
}

TEST(FitBreakdownTest, MakeFromPatterns)
{
    std::vector<Pattern> patterns{Pattern::Single, Pattern::Single,
                                  Pattern::Cubic};
    FitBreakdown bd = makeFitBreakdown(patterns, 0.5);
    EXPECT_DOUBLE_EQ(bd.of(Pattern::Single), 1.0);
    EXPECT_DOUBLE_EQ(bd.of(Pattern::Cubic), 0.5);
    EXPECT_DOUBLE_EQ(bd.total(), 1.5);
}

} // anonymous namespace
} // namespace radcrit
