/**
 * @file
 * Tests for the canonical paper experiment configurations.
 */

#include <gtest/gtest.h>

#include "campaign/paperconfigs.hh"

namespace radcrit
{
namespace
{

TEST(PaperConfigsTest, DeviceFactories)
{
    EXPECT_EQ(makeDevice(DeviceId::K40).name, "K40");
    EXPECT_EQ(makeDevice(DeviceId::XeonPhi).name, "XeonPhi");
    EXPECT_EQ(allDevices().size(), 2u);
    EXPECT_STREQ(deviceIdName(DeviceId::K40), "K40");
}

TEST(PaperConfigsTest, DgemmSidesMatchPaper)
{
    // Fig. 2: 3 sizes on the K40, 4 on the Phi (adds 8192).
    EXPECT_EQ(dgemmScaledSides(DeviceId::K40).size(), 3u);
    EXPECT_EQ(dgemmScaledSides(DeviceId::XeonPhi).size(), 4u);
    EXPECT_EQ(dgemmScaledSides(DeviceId::XeonPhi).back(), 1024);
}

TEST(PaperConfigsTest, LavamdSizesMatchPaper)
{
    // Fig. 4: K40 tested at 15/19/23 boxes, Phi adds 13.
    auto k40 = lavamdScaledSizes(DeviceId::K40);
    auto phi = lavamdScaledSizes(DeviceId::XeonPhi);
    ASSERT_EQ(k40.size(), 3u);
    ASSERT_EQ(phi.size(), 4u);
    EXPECT_EQ(k40.front().paperBoxes, 15);
    EXPECT_EQ(phi.front().paperBoxes, 13);
    EXPECT_EQ(phi.back().paperBoxes, 23);
}

TEST(PaperConfigsTest, WorkloadFactoriesLabelPaperSizes)
{
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    auto dgemm = makeDgemmWorkload(phi, 128);
    EXPECT_EQ(dgemm->inputLabel(), "1024x1024");
    auto lavamd = makeLavamdWorkload(
        phi, lavamdScaledSizes(DeviceId::XeonPhi)[0]);
    EXPECT_EQ(lavamd->inputLabel(), "13 boxes/dim");
    auto hotspot = makeHotspotWorkload(phi);
    EXPECT_EQ(hotspot->inputLabel(), "1024x1024");
    auto clamr = makeClamrWorkload(phi);
    EXPECT_EQ(clamr->inputLabel(), "512x512 cells");
}

TEST(PaperConfigsTest, GridsMatchPaperScales)
{
    EXPECT_EQ(hotspotScaledGrid() * 4, 1024);
    EXPECT_EQ(clamrScaledGrid() * 4, 512);
}

TEST(PaperConfigsTest, CampaignSeedsIndependent)
{
    CampaignConfig a = defaultCampaign(10, "K40", "DGEMM", "1024");
    CampaignConfig b = defaultCampaign(10, "K40", "DGEMM", "2048");
    CampaignConfig c = defaultCampaign(10, "XeonPhi", "DGEMM",
                                       "1024");
    EXPECT_NE(a.sim.seed, b.sim.seed);
    EXPECT_NE(a.sim.seed, c.sim.seed);
    EXPECT_EQ(a.sim.seed,
              defaultCampaign(10, "K40", "DGEMM", "1024").sim.seed);
    EXPECT_EQ(a.sim.faultyRuns, 10u);
}

} // anonymous namespace
} // namespace radcrit
