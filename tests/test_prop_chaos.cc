/**
 * @file
 * Property tests for the resilience layer: under ANY all-retryable
 * chaos plan (every fault's attempt budget below the executor's
 * retry budget) a campaign is bit-identical to the same campaign
 * run with no chaos at all, for any worker count — the injected
 * faults are fully absorbed. A second, deliberately falsified
 * property demonstrates that the shrinker reports a minimal
 * failing plan.
 *
 * Each property case runs several full (small) campaigns, so the
 * case count is capped well below the framework default — CI runs
 * the proptest label with RADCRIT_PROPTEST_CASES=2000, which is
 * right for value-level properties but not campaign-level ones.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "campaign/runner.hh"
#include "campaign/series.hh"
#include "check/prop.hh"
#include "exec/chaos.hh"
#include "kernels/dgemm.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{
namespace
{

/** Campaign-level properties get few cases: each case simulates. */
check::PropConfig
campaignPropConfig(uint64_t max_cases)
{
    check::PropConfig cfg = check::defaultPropConfig();
    if (!cfg.replay)
        cfg.cases = std::min(cfg.cases, max_cases);
    return cfg;
}

std::string
flattenRows(const CampaignResult &res)
{
    std::string out;
    for (const auto &row : runRows(res)) {
        for (const auto &cell : row) {
            out += cell;
            out += '\x1f';
        }
        out += '\n';
    }
    return out;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(),
                  suffix) == 0;
}

/**
 * The deterministic, chaos-blind subset of a campaign stats
 * snapshot: wall-clock entries (".ns" counters, latency ".hist"
 * histograms) vary run to run, and "resilience.*" entries exist
 * precisely because chaos was injected — everything else must be
 * untouched by absorbed faults.
 */
std::vector<StatsSnapshot::Entry>
comparableStats(const StatsSnapshot &snap)
{
    std::vector<StatsSnapshot::Entry> out;
    for (const auto &e : snap.entries) {
        bool timing = endsWith(e.name, ".ns") ||
            endsWith(e.name, ".hist");
        bool resilience = e.name.rfind("resilience.", 0) == 0;
        if (!timing && !resilience)
            out.push_back(e);
    }
    return out;
}

bool
sameComparableStats(const StatsSnapshot &a, const StatsSnapshot &b)
{
    auto da = comparableStats(a);
    auto db = comparableStats(b);
    if (da.size() != db.size())
        return false;
    for (size_t i = 0; i < da.size(); ++i) {
        if (da[i].name != db[i].name ||
            da[i].kind != db[i].kind ||
            da[i].value != db[i].value ||
            da[i].count != db[i].count ||
            da[i].sum != db[i].sum ||
            da[i].buckets != db[i].buckets)
            return false;
    }
    return true;
}

constexpr uint64_t kRuns = 24;

CampaignConfig
campaignConfig(unsigned jobs)
{
    CampaignConfig cfg;
    cfg.sim.faultyRuns = kRuns;
    cfg.sim.seed = 7;
    cfg.sim.jobs = jobs;
    cfg.sim.resilience.maxAttempts = 3;
    cfg.sim.resilience.backoffBaseNs = 1000;
    return cfg;
}

TEST(ChaosProperties, RetryablePlansAreAbsorbedBitIdentically)
{
    DeviceModel device = makeK40();
    Dgemm clean(device, 64, 42);
    CampaignResult base =
        runCampaign(device, clean, campaignConfig(1));
    std::string base_rows = flattenRows(base);

    // (plan seed, throw count): every generated plan is transient
    // because attempts=1 is below the budget of 3.
    auto gen = check::gen::pairOf(
        check::gen::intRange(0, 1'000'000),
        check::gen::intRange(0, 5));

    check::PropResult result =
        check::forAll<std::pair<int64_t, int64_t>>(
            "retryable chaos is invisible", gen,
            std::function<bool(
                const std::pair<int64_t, int64_t> &)>(
                [&](const std::pair<int64_t, int64_t> &value) {
                    ChaosPlanParams params;
                    params.seed =
                        static_cast<uint64_t>(value.first);
                    params.runs = kRuns;
                    params.throws =
                        static_cast<uint64_t>(value.second);
                    params.attempts = 1;
                    for (unsigned jobs : {1u, 2u, 8u}) {
                        ChaosEngine engine(
                            makeChaosPlan(params));
                        setChaos(&engine);
                        Dgemm dgemm(device, 64, 42);
                        CampaignResult res = runCampaign(
                            device, dgemm,
                            campaignConfig(jobs));
                        setChaos(nullptr);
                        if (engine.thrown() !=
                            params.throws)
                            return false;
                        if (flattenRows(res) != base_rows)
                            return false;
                        if (res.count(Outcome::InfraError) ||
                            res.count(Outcome::InfraTimeout))
                            return false;
                        if (!sameComparableStats(base.stats,
                                                 res.stats))
                            return false;
                    }
                    return true;
                }),
            campaignPropConfig(6));
    EXPECT_TRUE(result.ok) << result.message;
    setChaos(nullptr);
}

TEST(ChaosProperties, ShrinkerReportsMinimalFailingPlan)
{
    // A deliberately false property — "a campaign under permanent
    // faults has no quarantined runs" — falsifies on every
    // generated plan; the shrinker must walk the counterexample
    // down to the minimal one: a single fault on run item 0.
    DeviceModel device = makeK40();

    auto items =
        check::gen::vectorOf(check::gen::intRange(0, 11), 1, 4);

    check::PropResult result =
        check::forAll<std::vector<int64_t>>(
            "permanent faults go unnoticed (false)", items,
            std::function<bool(const std::vector<int64_t> &)>(
                [&](const std::vector<int64_t> &value) {
                    ChaosPlan plan;
                    for (int64_t item : value) {
                        ChaosFault fault;
                        fault.kind = ChaosFaultKind::Throw;
                        fault.item =
                            static_cast<uint64_t>(item);
                        fault.attempts = 3; // never recovers
                        plan.faults.push_back(fault);
                    }
                    ChaosEngine engine(std::move(plan));
                    setChaos(&engine);
                    Dgemm dgemm(device, 64, 42);
                    CampaignConfig cfg = campaignConfig(2);
                    cfg.sim.faultyRuns = 12;
                    CampaignResult res =
                        runCampaign(device, dgemm, cfg);
                    setChaos(nullptr);
                    return res.count(Outcome::InfraError) ==
                        0;
                }),
            campaignPropConfig(1));

    ASSERT_FALSE(result.ok);
    // The minimized counterexample is the one-element plan [0],
    // and the report carries the replay seed for this case.
    EXPECT_NE(result.message.find("[0]"), std::string::npos)
        << result.message;
    EXPECT_NE(result.message.find("RADCRIT_PROPTEST_SEED"),
              std::string::npos)
        << result.message;
    setChaos(nullptr);
}

} // anonymous namespace
} // namespace radcrit
