/**
 * @file
 * Unit tests of the statistical assertion library: numeric kernels
 * (inverse normal, Wilson, Katz, KS, incomplete gamma) against
 * known reference values, and the demonstrate-at-alpha semantics of
 * the named checks.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "check/statcheck.hh"
#include "common/rng.hh"

namespace radcrit
{
namespace
{

TEST(NormalQuantile, ReferenceValues)
{
    // Table values of the standard normal inverse CDF.
    EXPECT_NEAR(check::normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(check::normalQuantile(0.975), 1.959963985, 1e-6);
    EXPECT_NEAR(check::normalQuantile(0.995), 2.575829304, 1e-6);
    EXPECT_NEAR(check::normalQuantile(0.025), -1.959963985,
                1e-6);
    EXPECT_NEAR(check::normalQuantile(0.0001), -3.719016485,
                1e-5);
}

TEST(NormalQuantile, Monotone)
{
    double prev = -1e9;
    for (double p = 0.01; p < 1.0; p += 0.01) {
        double q = check::normalQuantile(p);
        EXPECT_GT(q, prev);
        prev = q;
    }
}

TEST(WilsonInterval, ReferenceValue)
{
    // Classic worked example: 10/50 at 95% gives roughly
    // [0.112, 0.331] (Wilson score, no continuity correction).
    check::Interval ci = check::wilsonInterval(10, 50, 0.05);
    EXPECT_NEAR(ci.lo, 0.1124, 5e-4);
    EXPECT_NEAR(ci.hi, 0.3304, 5e-4);
}

TEST(WilsonInterval, DegenerateCountsStayInUnitRange)
{
    check::Interval zero = check::wilsonInterval(0, 20, 0.01);
    EXPECT_DOUBLE_EQ(zero.lo, 0.0);
    EXPECT_GT(zero.hi, 0.0);
    EXPECT_LT(zero.hi, 0.5);
    check::Interval full = check::wilsonInterval(20, 20, 0.01);
    EXPECT_DOUBLE_EQ(full.hi, 1.0);
    EXPECT_LT(full.lo, 1.0);
    EXPECT_GT(full.lo, 0.5);
}

TEST(WilsonInterval, ShrinksWithSamples)
{
    check::Interval small = check::wilsonInterval(20, 40, 0.05);
    check::Interval large =
        check::wilsonInterval(2000, 4000, 0.05);
    EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(ProportionChecks, DemonstrateSemantics)
{
    // 560/1000 demonstrates p >= 0.5 at alpha 0.01 (Wilson lower
    // bound ~0.519) but NOT p >= 0.55.
    EXPECT_TRUE(
        check::proportionAtLeast("x", 560, 1000, 0.5, 0.01));
    EXPECT_FALSE(
        check::proportionAtLeast("x", 560, 1000, 0.55, 0.01));
    EXPECT_TRUE(
        check::proportionAtMost("x", 560, 1000, 0.65, 0.01));
    EXPECT_FALSE(
        check::proportionAtMost("x", 560, 1000, 0.57, 0.01));
    EXPECT_TRUE(check::proportionBetween("x", 560, 1000, 0.5,
                                         0.65, 0.01));
    EXPECT_FALSE(check::proportionBetween("x", 560, 1000, 0.57,
                                          0.65, 0.01));
}

TEST(ProportionChecks, MessagesSelfDocument)
{
    check::CheckResult r =
        check::proportionAtLeast("sdc_fraction", 56, 100, 0.9,
                                 0.01);
    EXPECT_FALSE(r);
    EXPECT_NE(r.message.find("sdc_fraction"), std::string::npos);
    EXPECT_NE(r.message.find("56/100"), std::string::npos);
    EXPECT_NE(r.message.find("alpha=0.01"), std::string::npos);
    EXPECT_NE(r.message.find("FAIL"), std::string::npos);
    check::CheckResult ok =
        check::proportionAtLeast("sdc_fraction", 56, 100, 0.4,
                                 0.01);
    EXPECT_TRUE(ok);
    EXPECT_NE(ok.message.find("PASS"), std::string::npos);
}

TEST(ProportionGreater, DetectsSeparationOnly)
{
    EXPECT_TRUE(
        check::proportionGreater("g", 700, 1000, 500, 1000,
                                 0.01));
    // Close proportions cannot be demonstrated apart.
    EXPECT_FALSE(
        check::proportionGreater("g", 510, 1000, 500, 1000,
                                 0.01));
    // Order matters.
    EXPECT_FALSE(
        check::proportionGreater("g", 500, 1000, 700, 1000,
                                 0.01));
}

TEST(RiskRatio, CentersOnObservedRatio)
{
    check::Interval ci =
        check::riskRatioInterval(300, 1000, 100, 1000, 0.05);
    EXPECT_LT(ci.lo, 3.0);
    EXPECT_GT(ci.hi, 3.0);
    EXPECT_GT(ci.lo, 2.0);
    EXPECT_LT(ci.hi, 4.5);
    EXPECT_TRUE(check::riskRatioAtLeast("rr", 300, 1000, 100,
                                        1000, 2.0, 0.05));
    EXPECT_FALSE(check::riskRatioAtLeast("rr", 300, 1000, 100,
                                         1000, 3.0, 0.05));
    EXPECT_TRUE(check::riskRatioAtMost("rr", 300, 1000, 100,
                                       1000, 4.5, 0.05));
}

TEST(RiskRatio, SurvivesDegenerateCounts)
{
    check::Interval ci =
        check::riskRatioInterval(0, 100, 50, 100, 0.05);
    EXPECT_GT(ci.lo, 0.0);
    EXPECT_TRUE(std::isfinite(ci.hi));
}

TEST(RatioChecks, MapRatiosToProportions)
{
    // 400 SDC vs 100 detectable: ratio 4.0; demonstrable >= 3 at
    // alpha 0.01 but not >= 4.
    EXPECT_TRUE(check::ratioAtLeast("sdc", 400, 100, 3.0, 0.01));
    EXPECT_FALSE(check::ratioAtLeast("sdc", 400, 100, 4.0, 0.01));
    EXPECT_TRUE(check::ratioAtMost("sdc", 400, 100, 5.5, 0.01));
}

TEST(MeanChecks, RunningStatIntegration)
{
    RunningStat tight;
    Rng rng(3);
    for (int i = 0; i < 2000; ++i)
        tight.add(10.0 + rng.normal());
    EXPECT_TRUE(check::meanAtLeast("m", tight, 9.5, 0.01));
    EXPECT_FALSE(check::meanAtLeast("m", tight, 10.5, 0.01));

    RunningStat lower;
    for (int i = 0; i < 2000; ++i)
        lower.add(8.0 + rng.normal());
    EXPECT_TRUE(check::meanGreater("m", tight, lower, 0.01));
    EXPECT_FALSE(check::meanGreater("m", lower, tight, 0.01));
}

TEST(KolmogorovSmirnov, IdenticalSamplesHaveZeroDistance)
{
    std::vector<double> a{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(check::ksStatistic(a, a), 0.0);
    EXPECT_NEAR(check::ksPValue(0.0, 4, 4), 1.0, 1e-12);
}

TEST(KolmogorovSmirnov, DisjointSamplesHaveDistanceOne)
{
    std::vector<double> a{1.0, 2.0, 3.0};
    std::vector<double> b{10.0, 11.0, 12.0};
    EXPECT_DOUBLE_EQ(check::ksStatistic(a, b), 1.0);
    EXPECT_LT(check::ksPValue(1.0, 100, 100), 1e-6);
}

TEST(KolmogorovSmirnov, SameDistributionPasses)
{
    Rng rng(11);
    std::vector<double> a, b;
    for (int i = 0; i < 400; ++i) {
        a.push_back(rng.normal());
        b.push_back(rng.normal());
    }
    EXPECT_TRUE(check::ksSameDistribution("same", a, b, 0.01));

    std::vector<double> shifted;
    for (double v : b)
        shifted.push_back(v + 1.0);
    EXPECT_FALSE(
        check::ksSameDistribution("shifted", a, shifted, 0.01));
}

TEST(GammaQ, ReferenceValues)
{
    // Q(0.5, x) = erfc(sqrt(x)).
    for (double x : {0.1, 0.5, 1.0, 2.5, 7.0}) {
        EXPECT_NEAR(check::gammaQ(0.5, x),
                    std::erfc(std::sqrt(x)), 1e-10);
    }
    // Q(1, x) = exp(-x).
    EXPECT_NEAR(check::gammaQ(1.0, 3.0), std::exp(-3.0), 1e-12);
    // chi-squared survival reference: P(chi2_1 > 3.841) ~ 0.05.
    EXPECT_NEAR(check::chiSquaredPValue(3.841459, 1), 0.05, 1e-4);
    EXPECT_NEAR(check::chiSquaredPValue(9.487729, 4), 0.05, 1e-4);
}

TEST(ChiSquared, FitAcceptsMatchingDistribution)
{
    // 600 draws from a known categorical distribution.
    std::vector<double> probs{0.5, 0.3, 0.2};
    Rng rng(5);
    std::vector<uint64_t> counts(3, 0);
    for (int i = 0; i < 600; ++i) {
        double u = rng.uniform();
        ++counts[u < 0.5 ? 0 : (u < 0.8 ? 1 : 2)];
    }
    EXPECT_TRUE(check::chiSquaredFit("fit", counts, probs, 0.01));
    std::vector<double> wrong{0.1, 0.3, 0.6};
    EXPECT_FALSE(
        check::chiSquaredFit("fit", counts, wrong, 0.01));
}

TEST(ChiSquared, ZeroProbabilityCategoryMustBeEmpty)
{
    std::vector<uint64_t> counts{10, 0, 30};
    std::vector<double> probs{0.25, 0.0, 0.75};
    EXPECT_TRUE(check::chiSquaredFit("z", counts, probs, 0.01));
    counts[1] = 1;
    std::vector<double> probs2{0.25, 0.0, 0.75};
    EXPECT_FALSE(check::chiSquaredFit("z", counts, probs2, 0.01));
}

TEST(ChiSquared, HomogeneityAcceptsSameSource)
{
    Rng rng(9);
    std::vector<uint64_t> a(4, 0), b(4, 0);
    for (int i = 0; i < 500; ++i) {
        a[rng.uniformInt(4)]++;
        b[rng.uniformInt(4)]++;
    }
    EXPECT_TRUE(check::chiSquaredHomogeneity("h", a, b, 0.01));
    // A grossly different source fails.
    std::vector<uint64_t> c{400, 50, 25, 25};
    EXPECT_FALSE(check::chiSquaredHomogeneity("h", a, c, 0.01));
}

TEST(ChiSquared, HomogeneityIgnoresJointlyEmptyCategories)
{
    std::vector<uint64_t> a{100, 0, 100, 0};
    std::vector<uint64_t> b{110, 0, 90, 0};
    check::CheckResult r =
        check::chiSquaredHomogeneity("h", a, b, 0.01);
    EXPECT_TRUE(r) << r.message;
    EXPECT_NE(r.message.find("dof=1"), std::string::npos)
        << r.message;
}

} // anonymous namespace
} // namespace radcrit
