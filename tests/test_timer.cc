/**
 * @file
 * Tests for the scoped phase timers.
 */

#include <gtest/gtest.h>

#include <thread>

#include "obs/timer.hh"

namespace radcrit
{
namespace
{

TEST(PhaseTimerTest, RecordAccumulates)
{
    StatsRegistry reg;
    PhaseTimer timer(reg, "phase.x");
    timer.recordNs(100);
    timer.recordNs(50);
    EXPECT_EQ(timer.calls(), 2u);
    EXPECT_EQ(timer.totalNs(), 150u);
    EXPECT_EQ(reg.counter("phase.x.calls").value(), 2u);
    EXPECT_EQ(reg.counter("phase.x.ns").value(), 150u);
    EXPECT_EQ(reg.histogram("phase.x.hist").count(), 2u);
}

TEST(PhaseTimerTest, WithoutHistogramSkipsBuckets)
{
    StatsRegistry reg;
    PhaseTimer timer(reg, "phase.lean", /*with_hist=*/false);
    timer.recordNs(10);
    EXPECT_EQ(reg.counter("phase.lean.calls").value(), 1u);
    // No histogram instrument was registered.
    EXPECT_EQ(reg.snapshot().entries.size(), 2u);
}

TEST(ScopedTickTest, RecordsOnDestruction)
{
    StatsRegistry reg;
    PhaseTimer timer(reg, "phase.tick");
    {
        ScopedTick tick(timer);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(2));
        EXPECT_EQ(timer.calls(), 0u); // not recorded yet
    }
    EXPECT_EQ(timer.calls(), 1u);
    // 2 ms sleep must register at least 1 ms of wall time.
    EXPECT_GE(timer.totalNs(), 1000000u);
}

TEST(ScopedTickTest, ElapsedIsMonotonic)
{
    StatsRegistry reg;
    PhaseTimer timer(reg, "phase.mono");
    ScopedTick tick(timer);
    uint64_t a = tick.elapsedNs();
    uint64_t b = tick.elapsedNs();
    EXPECT_GE(b, a);
}

TEST(ScopedTimerTest, OneShotResolvesByName)
{
    StatsRegistry reg;
    {
        ScopedTimer timer(reg, "setup.golden");
    }
    EXPECT_EQ(reg.counter("setup.golden.calls").value(), 1u);
    EXPECT_GT(reg.counter("setup.golden.ns").value(), 0u);
}

TEST(ScopedTimerTest, RepeatedScopesShareInstruments)
{
    StatsRegistry reg;
    for (int i = 0; i < 3; ++i)
        ScopedTimer timer(reg, "setup.repeat");
    EXPECT_EQ(reg.counter("setup.repeat.calls").value(), 3u);
}

TEST(PhaseTimerTest, KernelTimersFeedGlobalRegistry)
{
    // The kernels register their inject timers against the global
    // registry at construction; the instruments must exist and be
    // counters of the expected names.
    StatsSnapshot before = StatsRegistry::global().snapshot();
    PhaseTimer timer(StatsRegistry::global(),
                     "test.probe.inject");
    timer.recordNs(5);
    StatsSnapshot delta =
        StatsRegistry::global().snapshot().since(before);
    EXPECT_DOUBLE_EQ(delta.value("test.probe.inject.calls"), 1.0);
    EXPECT_DOUBLE_EQ(delta.value("test.probe.inject.ns"), 5.0);
}

} // anonymous namespace
} // namespace radcrit
