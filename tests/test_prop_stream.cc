/**
 * @file
 * Property-based tests of the streaming campaign pipeline: for all
 * four kernels, arbitrary batch sizes (including 1 and sizes larger
 * than the campaign), and jobs in {1, 2, 8}, the streamed
 * simulate→analyze path produces bit-identical analysis results,
 * identical CSV rows, and identical strike traces (modulo wallNs,
 * the per-run wall time, which no two executions share) to the
 * materialized baseline.
 *
 * A falsified property prints a RADCRIT_PROPTEST_SEED for replay.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "campaign/analysis.hh"
#include "campaign/paperconfigs.hh"
#include "campaign/runner.hh"
#include "campaign/series.hh"
#include "check/prop.hh"
#include "kernels/clamr.hh"
#include "kernels/dgemm.hh"
#include "kernels/hotspot.hh"
#include "kernels/lavamd.hh"
#include "obs/trace.hh"

namespace radcrit
{
namespace
{

enum class Wl { Dgemm, LavaMd, HotSpot, Clamr };

std::unique_ptr<Workload>
makeSmall(Wl wl, const DeviceModel &device)
{
    switch (wl) {
      case Wl::Dgemm:
        return std::make_unique<Dgemm>(device, 64, 42);
      case Wl::LavaMd:
        return std::make_unique<LavaMd>(device, 5, 42, 2, 4, 11);
      case Wl::HotSpot:
        return std::make_unique<HotSpot>(device, 64, 64, 42);
      case Wl::Clamr:
        return std::make_unique<Clamr>(device, 64, 64, 42);
    }
    return nullptr;
}

/** Bit-level equality of two double values, NaN-tolerant. */
bool
sameDouble(double a, double b)
{
    return a == b || (std::isnan(a) && std::isnan(b));
}

/** Bit-level equality of everything an analysis produces. */
bool
sameAnalysis(const CampaignResult &a, const CampaignResult &b)
{
    if (a.runs.size() != b.runs.size())
        return false;
    for (size_t i = 0; i < a.runs.size(); ++i) {
        const RunRecord &ra = a.runs[i];
        const RunRecord &rb = b.runs[i];
        if (ra.outcome != rb.outcome ||
            ra.crit.numIncorrect != rb.crit.numIncorrect ||
            ra.crit.pattern != rb.crit.pattern ||
            ra.crit.executionFiltered !=
                rb.crit.executionFiltered ||
            !sameDouble(ra.crit.meanRelErrPct,
                        rb.crit.meanRelErrPct)) {
            return false;
        }
    }
    return sameDouble(a.fitTotalAu(false), b.fitTotalAu(false)) &&
        sameDouble(a.fitTotalAu(true), b.fitTotalAu(true));
}

/**
 * Render one strike record with its wallNs zeroed: per-run wall
 * time is the one field even two materialized reruns do not share.
 */
std::string
traceModuloWall(StrikeTraceRecord rec)
{
    rec.wallNs = 0;
    return strikeTraceJson(rec);
}

bool
sameTraces(const std::vector<StrikeTraceRecord> &a,
           const std::vector<StrikeTraceRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (traceModuloWall(a[i]) != traceModuloWall(b[i]))
            return false;
    return true;
}

/** Modest case counts: each case simulates small campaigns. */
check::PropConfig
fixedConfig(uint64_t cases)
{
    check::PropConfig cfg;
    cfg.seed = 20260806;
    cfg.cases = cases;
    return cfg;
}

using Param = std::tuple<DeviceId, Wl>;

constexpr uint64_t kRuns = 24;

class StreamPropTest : public ::testing::TestWithParam<Param>
{
  protected:
    void
    SetUp() override
    {
        auto [device_id, wl] = GetParam();
        device_ = makeDevice(device_id);
        workload_ = makeSmall(wl, device_);

        // Materialized baseline: one batch, one worker; its
        // analysis, CSV rows, and strike traces are the reference
        // every streamed configuration must reproduce.
        SimConfig cfg = simConfig();
        MemoryTraceSink traces;
        setTraceSink(&traces);
        CampaignRaw raw =
            simulateCampaign(device_, *workload_, cfg);
        baseline_ = analyzeCampaign(raw, AnalysisConfig{});
        setTraceSink(nullptr);
        baselineTraces_ = traces.strikes();
        baselineCsv_ = runRows(baseline_);
    }

    void TearDown() override { setTraceSink(nullptr); }

    SimConfig
    simConfig() const
    {
        SimConfig cfg;
        cfg.faultyRuns = kRuns;
        cfg.seed = 77;
        return cfg;
    }

    /**
     * Stream the campaign at (batchRuns, jobs) straight into an
     * AnalyzeSink and compare everything against the baseline.
     */
    bool
    streamedMatchesBaseline(uint64_t batch_runs, uint64_t jobs)
    {
        SimConfig cfg = simConfig();
        cfg.batchRuns = batch_runs;
        cfg.jobs = jobs;
        MemoryTraceSink traces;
        setTraceSink(&traces);
        AnalyzeSink sink{AnalysisConfig{}};
        simulateCampaignStream(device_, *workload_, cfg, sink);
        CampaignResult streamed = sink.take();
        setTraceSink(nullptr);
        return sameAnalysis(baseline_, streamed) &&
            runRows(streamed) == baselineCsv_ &&
            sameTraces(baselineTraces_, traces.strikes());
    }

    DeviceModel device_;
    std::unique_ptr<Workload> workload_;
    CampaignResult baseline_;
    std::vector<StrikeTraceRecord> baselineTraces_;
    std::vector<std::vector<std::string>> baselineCsv_;
};

TEST_P(StreamPropTest, ArbitraryBatchSizesAreByteIdentical)
{
    check::PropResult r = check::forAll<int64_t>(
        "streamed analysis/CSV/traces match materialized for any "
        "batch size at jobs 1/2/8",
        check::gen::intRange(1, static_cast<int64_t>(kRuns) * 2),
        std::function<bool(const int64_t &)>(
            [&](const int64_t &batch_runs) {
                for (uint64_t jobs : {1, 2, 8})
                    if (!streamedMatchesBaseline(
                            static_cast<uint64_t>(batch_runs),
                            jobs))
                        return false;
                return true;
            }),
        fixedConfig(6));
    EXPECT_TRUE(r.ok) << r.message;
}

TEST_P(StreamPropTest, EdgeBatchSizesAreByteIdentical)
{
    // The corners the generator may not hit: single-run batches,
    // one batch exactly the campaign, a batch larger than the
    // campaign, and 0 (the materialized default, one batch).
    for (uint64_t batch_runs : {uint64_t{1}, kRuns, kRuns + 7,
                                uint64_t{0}}) {
        for (uint64_t jobs : {1, 2, 8}) {
            EXPECT_TRUE(streamedMatchesBaseline(batch_runs, jobs))
                << "batchRuns=" << batch_runs << " jobs=" << jobs;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, StreamPropTest,
    ::testing::Values(
        Param{DeviceId::K40, Wl::Dgemm},
        Param{DeviceId::XeonPhi, Wl::LavaMd},
        Param{DeviceId::K40, Wl::HotSpot},
        Param{DeviceId::XeonPhi, Wl::Clamr}),
    [](const ::testing::TestParamInfo<Param> &info) {
        switch (std::get<1>(info.param)) {
          case Wl::Dgemm:
            return std::string("Dgemm");
          case Wl::LavaMd:
            return std::string("LavaMd");
          case Wl::HotSpot:
            return std::string("HotSpot");
          case Wl::Clamr:
            return std::string("Clamr");
        }
        return std::string("Unknown");
    });

} // anonymous namespace
} // namespace radcrit
