/**
 * @file
 * Tests for the structured trace sinks: in-memory capture during
 * campaigns (one record per faulty run, fields matching the
 * RunRecord), JSONL rendering, and the logging-layer routing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "campaign/runner.hh"
#include "common/logging.hh"
#include "kernels/dgemm.hh"
#include "obs/trace.hh"

namespace radcrit
{
namespace
{

/** Detach the global sink even when a test fails mid-way. */
class TraceTest : public ::testing::Test
{
  protected:
    void TearDown() override { setTraceSink(nullptr); }

    DeviceModel device_ = makeK40();
    Dgemm dgemm_{device_, 64, 42};

    CampaignConfig
    config(uint64_t runs, uint64_t seed = 7)
    {
        CampaignConfig cfg;
        cfg.sim.faultyRuns = runs;
        cfg.sim.seed = seed;
        return cfg;
    }
};

TEST_F(TraceTest, SinkAttachDetachRoundTrip)
{
    EXPECT_EQ(traceSink(), nullptr);
    MemoryTraceSink sink;
    EXPECT_EQ(setTraceSink(&sink), nullptr);
    EXPECT_EQ(traceSink(), &sink);
    EXPECT_EQ(setTraceSink(nullptr), &sink);
    EXPECT_EQ(traceSink(), nullptr);
}

TEST_F(TraceTest, OneRecordPerFaultyRun)
{
    MemoryTraceSink sink;
    setTraceSink(&sink);
    CampaignResult res = runCampaign(device_, dgemm_, config(60));
    auto strikes = sink.strikes();
    ASSERT_EQ(strikes.size(), res.runs.size());
    for (size_t i = 0; i < strikes.size(); ++i) {
        const StrikeTraceRecord &rec = strikes[i];
        const RunRecord &run = res.runs[i];
        EXPECT_EQ(rec.run, i);
        EXPECT_EQ(rec.device, "K40");
        EXPECT_EQ(rec.workload, "DGEMM");
        EXPECT_EQ(rec.resource, run.strike.resource);
        EXPECT_EQ(rec.manifestation, run.strike.manifestation);
        EXPECT_EQ(rec.outcome, run.outcome);
        EXPECT_EQ(rec.numIncorrect, run.crit.numIncorrect);
        EXPECT_DOUBLE_EQ(rec.meanRelErrPct,
                         run.crit.meanRelErrPct);
        EXPECT_EQ(rec.pattern, run.crit.pattern);
        EXPECT_EQ(rec.executionFiltered,
                  run.crit.executionFiltered);
    }
}

TEST_F(TraceTest, NoSinkMeansNoRecords)
{
    MemoryTraceSink sink;
    runCampaign(device_, dgemm_, config(10));
    EXPECT_TRUE(sink.strikes().empty());
}

TEST_F(TraceTest, StrikeJsonCarriesSchemaAndFields)
{
    StrikeTraceRecord rec;
    rec.run = 3;
    rec.device = "K40";
    rec.workload = "DGEMM";
    rec.input = "512x512";
    rec.outcome = Outcome::Sdc;
    rec.numIncorrect = 17;
    rec.meanRelErrPct = 1.25;
    rec.pattern = Pattern::Single;
    rec.wallNs = 900;
    std::string json = strikeTraceJson(rec);
    EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"type\": \"strike\""),
              std::string::npos);
    EXPECT_NE(json.find("\"run\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"outcome\": \"SDC\""),
              std::string::npos);
    EXPECT_NE(json.find("\"numIncorrect\": 17"),
              std::string::npos);
    EXPECT_NE(json.find("\"wallNs\": 900"), std::string::npos);
}

TEST_F(TraceTest, MaskedRecordOmitsSdcMetrics)
{
    StrikeTraceRecord rec;
    rec.outcome = Outcome::Masked;
    std::string json = strikeTraceJson(rec);
    EXPECT_EQ(json.find("numIncorrect"), std::string::npos);
    EXPECT_NE(json.find("\"outcome\": \"Masked\""),
              std::string::npos);
}

TEST_F(TraceTest, JsonlSinkWritesOneLinePerEvent)
{
    std::string path = ::testing::TempDir() + "trace_test.jsonl";
    {
        JsonlTraceSink sink(path);
        setTraceSink(&sink);
        runCampaign(device_, dgemm_, config(25));
        setTraceSink(nullptr);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    size_t lines = 0;
    std::string line;
    while (std::getline(in, line)) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"schema\": 1"), std::string::npos);
        ++lines;
    }
    EXPECT_EQ(lines, 25u);
    std::remove(path.c_str());
}

TEST_F(TraceTest, WarnAndInformRouteIntoSink)
{
    MemoryTraceSink sink;
    setTraceSink(&sink);
    bool quiet = isQuiet();
    setQuiet(true); // console suppressed, sink still records
    warn("trace-routing check %d", 1);
    inform("trace-routing check %d", 2);
    setQuiet(quiet);
    setTraceSink(nullptr);
    auto logs = sink.logs();
    ASSERT_EQ(logs.size(), 2u);
    EXPECT_EQ(logs[0].first, "warn");
    EXPECT_EQ(logs[0].second, "trace-routing check 1");
    EXPECT_EQ(logs[1].first, "info");
    EXPECT_EQ(logs[1].second, "trace-routing check 2");
}

TEST_F(TraceTest, DetachedSinkReceivesNothing)
{
    MemoryTraceSink sink;
    setTraceSink(&sink);
    setTraceSink(nullptr);
    warn("not routed");
    EXPECT_TRUE(sink.logs().empty());
}

TEST_F(TraceTest, MemorySinkClearDropsEverything)
{
    MemoryTraceSink sink;
    sink.log("warn", "x");
    sink.strike(StrikeTraceRecord{});
    sink.clear();
    EXPECT_TRUE(sink.logs().empty());
    EXPECT_TRUE(sink.strikes().empty());
}

} // anonymous namespace
} // namespace radcrit
