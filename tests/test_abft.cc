/**
 * @file
 * Tests for the Huang-Abraham ABFT DGEMM checker/corrector.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "abft/abft_dgemm.hh"
#include "common/rng.hh"
#include "kernels/dgemm.hh"

namespace radcrit
{
namespace
{

class AbftTest : public ::testing::Test
{
  protected:
    DeviceModel device_ = makeK40();
    Dgemm dgemm_{device_, 64, 42};
    AbftDgemm abft_{dgemm_.a(), dgemm_.b(), 64};
};

TEST_F(AbftTest, CleanOutputPasses)
{
    std::vector<double> c = dgemm_.goldenC();
    auto verdict = abft_.checkAndCorrect(c);
    EXPECT_EQ(verdict.status, AbftDgemm::Status::Clean);
    EXPECT_EQ(verdict.correctedElements, 0u);
}

TEST_F(AbftTest, SingleErrorCorrected)
{
    std::vector<double> c = dgemm_.goldenC();
    double golden = c[5 * 64 + 9];
    c[5 * 64 + 9] += 3.5;
    auto verdict = abft_.checkAndCorrect(c);
    EXPECT_EQ(verdict.status, AbftDgemm::Status::Corrected);
    EXPECT_EQ(verdict.correctedElements, 1u);
    EXPECT_NEAR(c[5 * 64 + 9], golden, 1e-9);
}

TEST_F(AbftTest, RowLineErrorCorrected)
{
    std::vector<double> c = dgemm_.goldenC();
    std::vector<double> golden = c;
    Rng rng(1);
    for (int64_t j = 0; j < 64; ++j)
        c[17 * 64 + j] += rng.uniform(0.5, 2.0);
    auto verdict = abft_.checkAndCorrect(c);
    EXPECT_EQ(verdict.status, AbftDgemm::Status::Corrected);
    EXPECT_EQ(verdict.correctedElements, 64u);
    for (int64_t j = 0; j < 64; ++j)
        EXPECT_NEAR(c[17 * 64 + j], golden[17 * 64 + j], 1e-8);
}

TEST_F(AbftTest, ColumnLineErrorCorrected)
{
    std::vector<double> c = dgemm_.goldenC();
    std::vector<double> golden = c;
    for (int64_t i = 10; i < 30; ++i)
        c[i * 64 + 3] -= 1.25;
    auto verdict = abft_.checkAndCorrect(c);
    EXPECT_EQ(verdict.status, AbftDgemm::Status::Corrected);
    EXPECT_EQ(verdict.correctedElements, 20u);
    for (int64_t i = 10; i < 30; ++i)
        EXPECT_NEAR(c[i * 64 + 3], golden[i * 64 + 3], 1e-8);
}

TEST_F(AbftTest, SquareErrorDetectedNotCorrected)
{
    // Paper Section III: ABFT corrects single and line errors
    // "but not square errors".
    std::vector<double> c = dgemm_.goldenC();
    for (int64_t i = 8; i < 12; ++i)
        for (int64_t j = 20; j < 24; ++j)
            c[i * 64 + j] *= 2.0;
    auto verdict = abft_.checkAndCorrect(c);
    EXPECT_EQ(verdict.status,
              AbftDgemm::Status::DetectedUncorrectable);
    EXPECT_EQ(verdict.badRows, 4u);
    EXPECT_EQ(verdict.badCols, 4u);
}

TEST_F(AbftTest, RandomErrorsDetected)
{
    std::vector<double> c = dgemm_.goldenC();
    c[3 * 64 + 7] += 1.0;
    c[40 * 64 + 50] -= 2.0;
    c[60 * 64 + 1] += 0.5;
    auto verdict = abft_.checkAndCorrect(c);
    EXPECT_EQ(verdict.status,
              AbftDgemm::Status::DetectedUncorrectable);
}

TEST_F(AbftTest, TinyErrorBelowToleranceInvisible)
{
    // Rounding-scale corruption hides below the checksum
    // tolerance — honest ABFT behaviour.
    std::vector<double> c = dgemm_.goldenC();
    c[1] += 1e-13;
    auto verdict = abft_.checkAndCorrect(c);
    EXPECT_EQ(verdict.status, AbftDgemm::Status::Clean);
}

TEST_F(AbftTest, NanDetected)
{
    std::vector<double> c = dgemm_.goldenC();
    c[2 * 64 + 2] = std::nan("");
    auto verdict = abft_.checkAndCorrect(c);
    EXPECT_NE(verdict.status, AbftDgemm::Status::Clean);
}

TEST(AbftEndToEndTest, InjectedStrikesMatchPatternClasses)
{
    // Inject real strikes and check ABFT's verdict matches the
    // pattern class: single/line corrected or detected,
    // square/random only detected (paper Section V-A). A 128-side
    // matrix gives the block manifestations multiple tiles.
    DeviceModel device = makeK40();
    Dgemm dgemm(device, 128, 42);
    AbftDgemm abft(dgemm.a(), dgemm.b(), 128);
    Rng rng(2);

    Strike line_strike;
    line_strike.resource = ResourceKind::L2Cache;
    line_strike.manifestation = Manifestation::BitFlipInputLine;
    line_strike.timeFraction = 0.0;
    int meaningful = 0, flagged = 0;
    for (int i = 0; i < 10; ++i) {
        line_strike.entropy = rng.next64();
        SdcRecord rec = dgemm.inject(line_strike, rng);
        // Rounding-scale corruption legitimately hides below the
        // checksum tolerance; count only meaningful corruption.
        double worst = 0.0;
        for (const auto &e : rec.elements)
            worst = std::max(worst,
                             std::abs(e.read - e.expected));
        if (worst < 1e-6)
            continue;
        ++meaningful;
        auto c = dgemm.materializeOutput(rec);
        flagged += abft.checkAndCorrect(c).status !=
            AbftDgemm::Status::Clean;
    }
    ASSERT_GT(meaningful, 0);
    EXPECT_EQ(flagged, meaningful);

    Strike block_strike;
    block_strike.resource = ResourceKind::Scheduler;
    block_strike.manifestation = Manifestation::MisscheduledBlock;
    block_strike.entropy = 6;
    SdcRecord sq = dgemm.inject(block_strike, rng);
    ASSERT_FALSE(sq.empty());
    auto c2 = dgemm.materializeOutput(sq);
    auto verdict2 = abft.checkAndCorrect(c2);
    EXPECT_EQ(verdict2.status,
              AbftDgemm::Status::DetectedUncorrectable);
}

TEST(AbftDeathTest, MismatchedInputsFatal)
{
    std::vector<double> a(16, 1.0), b(9, 1.0);
    EXPECT_EXIT(AbftDgemm(a, b, 4), ::testing::ExitedWithCode(1),
                "must be");
}

} // anonymous namespace
} // namespace radcrit
