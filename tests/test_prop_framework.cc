/**
 * @file
 * Self-tests of the property-based testing mini-framework:
 * generator ranges, shrinking quality, seed replay, and the
 * environment-variable configuration surface.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>

#include "check/prop.hh"

namespace radcrit
{
namespace
{

using check::Gen;
using check::PropConfig;
using check::PropResult;

/** Fixed config so these tests never depend on the environment. */
PropConfig
fixedConfig(uint64_t seed = 1, uint64_t cases = 200)
{
    PropConfig cfg;
    cfg.seed = seed;
    cfg.cases = cases;
    return cfg;
}

TEST(PropFramework, PassingPropertyRunsAllCases)
{
    PropResult r = check::forAll<int64_t>(
        "int in range", check::gen::intRange(-5, 9),
        std::function<bool(const int64_t &)>(
            [](const int64_t &v) { return v >= -5 && v <= 9; }),
        fixedConfig());
    EXPECT_TRUE(r.ok) << r.message;
    EXPECT_EQ(r.casesRun, 200u);
    EXPECT_TRUE(r.message.empty());
}

TEST(PropFramework, FailureReportsReplaySeed)
{
    PropResult r = check::forAll<int64_t>(
        "never 7 or more", check::gen::intRange(0, 1000),
        std::function<bool(const int64_t &)>(
            [](const int64_t &v) { return v < 7; }),
        fixedConfig());
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.message.find("RADCRIT_PROPTEST_SEED="),
              std::string::npos)
        << r.message;
    EXPECT_NE(r.message.find("falsified"), std::string::npos);
}

TEST(PropFramework, ShrinkingFindsMinimalCounterexample)
{
    // The minimal violating value of "v < 7" over [0, 1000] is
    // exactly 7; greedy shrinking must land on it.
    PropResult r = check::forAll<int64_t>(
        "never 7 or more", check::gen::intRange(0, 1000),
        std::function<bool(const int64_t &)>(
            [](const int64_t &v) { return v < 7; }),
        fixedConfig());
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.message.find("counterexample"),
              std::string::npos);
    EXPECT_NE(r.message.find(": 7\n"), std::string::npos)
        << r.message;
}

TEST(PropFramework, ReplayReproducesTheExactCase)
{
    PropResult first = check::forAll<int64_t>(
        "no large values", check::gen::intRange(0, 100000),
        std::function<bool(const int64_t &)>(
            [](const int64_t &v) { return v < 90000; }),
        fixedConfig(42, 500));
    ASSERT_FALSE(first.ok);

    // Extract the advertised seed and replay only that case.
    std::string key = "RADCRIT_PROPTEST_SEED=";
    size_t pos = first.message.find(key);
    ASSERT_NE(pos, std::string::npos);
    uint64_t seed = std::strtoull(
        first.message.c_str() + pos + key.size(), nullptr, 10);

    PropConfig replay;
    replay.replay = true;
    replay.replaySeed = seed;
    PropResult again = check::forAll<int64_t>(
        "no large values", check::gen::intRange(0, 100000),
        std::function<bool(const int64_t &)>(
            [](const int64_t &v) { return v < 90000; }),
        replay);
    ASSERT_FALSE(again.ok);
    EXPECT_EQ(again.casesRun, 1u);
    // Same counterexample line, independent of which case index
    // originally found it.
    auto line_of = [](const std::string &msg) {
        size_t a = msg.find("counterexample");
        size_t b = msg.find('\n', a);
        return msg.substr(a, b - a);
    };
    EXPECT_EQ(line_of(first.message), line_of(again.message));
}

TEST(PropFramework, DeterministicAcrossRuns)
{
    auto run = [] {
        return check::forAll<int64_t>(
            "flaky?", check::gen::intRange(0, 1 << 20),
            std::function<bool(const int64_t &)>(
                [](const int64_t &v) { return v % 997 != 3; }),
            fixedConfig(7, 300));
    };
    PropResult a = run();
    PropResult b = run();
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.casesRun, b.casesRun);
    EXPECT_EQ(a.message, b.message);
}

TEST(PropFramework, RealGeneratorStaysInRange)
{
    PropResult r = check::forAll<double>(
        "real range", check::gen::real(-2.5, 4.0),
        std::function<bool(const double &)>(
            [](const double &v) { return v >= -2.5 && v < 4.0; }),
        fixedConfig());
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropFramework, ElementOfPicksOnlyMembers)
{
    std::vector<std::string> pool{"K40", "XeonPhi"};
    PropResult r = check::forAll<std::string>(
        "member", check::gen::elementOf(pool),
        std::function<bool(const std::string &)>(
            [&pool](const std::string &v) {
                return v == pool[0] || v == pool[1];
            }),
        fixedConfig());
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropFramework, VectorOfRespectsLengthBounds)
{
    auto g = check::gen::vectorOf(check::gen::intRange(0, 9), 2,
                                  6);
    PropResult r = check::forAll<std::vector<int64_t>>(
        "vector bounds", g,
        std::function<bool(const std::vector<int64_t> &)>(
            [](const std::vector<int64_t> &v) {
                if (v.size() < 2 || v.size() > 6)
                    return false;
                for (int64_t x : v) {
                    if (x < 0 || x > 9)
                        return false;
                }
                return true;
            }),
        fixedConfig());
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropFramework, VectorShrinkRemovesIrrelevantElements)
{
    // Failing whenever the vector contains a 5: the shrunk
    // counterexample should be a minimal-length vector.
    auto g = check::gen::vectorOf(check::gen::intRange(0, 9), 1,
                                  12);
    PropResult r = check::forAll<std::vector<int64_t>>(
        "no fives", g,
        std::function<bool(const std::vector<int64_t> &)>(
            [](const std::vector<int64_t> &v) {
                for (int64_t x : v) {
                    if (x == 5)
                        return false;
                }
                return true;
            }),
        fixedConfig());
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.message.find("[5]"), std::string::npos)
        << r.message;
}

TEST(PropFramework, PairShrinksComponentWise)
{
    auto g = check::gen::pairOf(check::gen::intRange(0, 100),
                                check::gen::intRange(0, 100));
    PropResult r = check::forAll<std::pair<int64_t, int64_t>>(
        "sum below 50", g,
        std::function<bool(const std::pair<int64_t, int64_t> &)>(
            [](const std::pair<int64_t, int64_t> &p) {
                return p.first + p.second < 50;
            }),
        fixedConfig());
    ASSERT_FALSE(r.ok);
    // The greedy descent must reach a boundary pair summing to
    // exactly 50.
    size_t pos = r.message.find("steps): ");
    ASSERT_NE(pos, std::string::npos);
    long a = 0, b = 0;
    ASSERT_EQ(std::sscanf(r.message.c_str() + pos + 8,
                          "(%ld, %ld)", &a, &b),
              2)
        << r.message;
    EXPECT_EQ(a + b, 50) << r.message;
}

TEST(PropFramework, GridRecordHonorsGeometry)
{
    auto g = check::gen::gridRecord(3, 8, 20);
    PropResult r = check::forAll<SdcRecord>(
        "grid geometry", g,
        std::function<bool(const SdcRecord &)>(
            [](const SdcRecord &rec) {
                if (rec.dims != 3)
                    return false;
                for (int a = 0; a < 3; ++a) {
                    if (rec.extent[a] < 1 || rec.extent[a] > 8)
                        return false;
                }
                for (const auto &e : rec.elements) {
                    for (int a = 0; a < 3; ++a) {
                        if (e.coord[a] < 0 ||
                            e.coord[a] >= rec.extent[a])
                            return false;
                    }
                    if (e.read == e.expected)
                        return false;
                }
                return true;
            }),
        fixedConfig());
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropFramework, PredicateRngIsStableUnderShrinking)
{
    // A property using auxiliary randomness must see the same
    // stream for the original value and every shrink candidate, so
    // the minimized counterexample still fails on replay.
    auto g = check::gen::intRange(0, 1000);
    auto prop = std::function<bool(const int64_t &, Rng &)>(
        [](const int64_t &v, Rng &rng) {
            uint64_t salt = rng.next64() % 100;
            return static_cast<uint64_t>(v) + salt < 150;
        });
    PropResult a =
        check::forAll<int64_t>("salted", g, prop, fixedConfig());
    PropResult b =
        check::forAll<int64_t>("salted", g, prop, fixedConfig());
    ASSERT_FALSE(a.ok);
    EXPECT_EQ(a.message, b.message);
}

class PropEnvTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saveEnv("RADCRIT_PROPTEST_SEED");
        saveEnv("RADCRIT_PROPTEST_CASES");
    }

    void
    TearDown() override
    {
        for (const auto &[name, value] : saved_) {
            if (value.second)
                setenv(name.c_str(), value.first.c_str(), 1);
            else
                unsetenv(name.c_str());
        }
    }

  private:
    void
    saveEnv(const std::string &name)
    {
        const char *raw = getenv(name.c_str());
        saved_[name] = {raw ? raw : "", raw != nullptr};
    }

    std::map<std::string, std::pair<std::string, bool>> saved_;
};

TEST_F(PropEnvTest, SeedEnvSwitchesToReplayMode)
{
    setenv("RADCRIT_PROPTEST_SEED", "987654321", 1);
    PropConfig cfg = check::defaultPropConfig();
    EXPECT_TRUE(cfg.replay);
    EXPECT_EQ(cfg.replaySeed, 987654321u);
}

TEST_F(PropEnvTest, CasesEnvOverridesCaseCount)
{
    unsetenv("RADCRIT_PROPTEST_SEED");
    setenv("RADCRIT_PROPTEST_CASES", "17", 1);
    PropConfig cfg = check::defaultPropConfig();
    EXPECT_FALSE(cfg.replay);
    EXPECT_EQ(cfg.cases, 17u);
}

TEST_F(PropEnvTest, DefaultsWithoutEnv)
{
    unsetenv("RADCRIT_PROPTEST_SEED");
    unsetenv("RADCRIT_PROPTEST_CASES");
    PropConfig cfg = check::defaultPropConfig();
    EXPECT_FALSE(cfg.replay);
    EXPECT_EQ(cfg.cases, 100u);
}

} // anonymous namespace
} // namespace radcrit
