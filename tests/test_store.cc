/**
 * @file
 * Tests for the content-addressed campaign store: key hashing
 * (stable, execution-parameter-blind), entry naming, save/load
 * round trips, mismatch handling, the hit/miss counters, and the
 * simulateOrLoad() front door.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>

#include "campaign/runner.hh"
#include "campaign/store.hh"
#include "common/logging.hh"
#include "kernels/dgemm.hh"
#include "logs/beamlog.hh"
#include "obs/stats_registry.hh"
#include "obs/trace.hh"

namespace radcrit
{
namespace
{

class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = ::testing::TempDir() + "radcrit_store_" +
            info->name();
        std::filesystem::remove_all(dir_);
    }

    void
    TearDown() override
    {
        setTraceSink(nullptr);
        std::filesystem::remove_all(dir_);
    }

    CampaignRaw
    campaign(uint64_t runs = 40, uint64_t seed = 11)
    {
        SimConfig cfg;
        cfg.faultyRuns = runs;
        cfg.seed = seed;
        return simulateCampaign(device_, dgemm_, cfg);
    }

    static bool
    sameRuns(const CampaignRaw &a, const CampaignRaw &b)
    {
        if (a.runs.size() != b.runs.size())
            return false;
        for (size_t i = 0; i < a.runs.size(); ++i) {
            if (a.runs[i].outcome != b.runs[i].outcome ||
                a.runs[i].strike.resource !=
                    b.runs[i].strike.resource ||
                a.runs[i].record.numIncorrect() !=
                    b.runs[i].record.numIncorrect()) {
                return false;
            }
        }
        return true;
    }

    DeviceModel device_ = makeK40();
    Dgemm dgemm_{device_, 64, 42};
    std::string dir_;
};

TEST_F(StoreTest, KeyHashStableAndExecutionBlind)
{
    CampaignKey key{"K40", "DGEMM", "256x256", SimConfig{}};
    uint64_t h = campaignKeyHash(key);
    EXPECT_EQ(campaignKeyHash(key), h);

    // jobs and progressEvery change how a campaign executes, never
    // what it produces: they must not move the address.
    CampaignKey exec = key;
    exec.sim.jobs = 8;
    exec.sim.progressEvery = 5;
    EXPECT_EQ(campaignKeyHash(exec), h);

    // Every identity field must move it.
    CampaignKey device = key;
    device.device = "XeonPhi";
    EXPECT_NE(campaignKeyHash(device), h);
    CampaignKey workload = key;
    workload.workload = "LavaMD";
    EXPECT_NE(campaignKeyHash(workload), h);
    CampaignKey input = key;
    input.input = "512x512";
    EXPECT_NE(campaignKeyHash(input), h);
    CampaignKey seed = key;
    seed.sim.seed += 1;
    EXPECT_NE(campaignKeyHash(seed), h);
    CampaignKey runs = key;
    runs.sim.faultyRuns += 1;
    EXPECT_NE(campaignKeyHash(runs), h);
}

TEST_F(StoreTest, FileNameCombinesTokensAndAddress)
{
    CampaignKey key{"Xeon Phi", "DGEMM", "256x256", SimConfig{}};
    std::string name = campaignKeyFileName(key);
    std::string expect = "xeon_phi-dgemm-256x256-" +
        strprintf("%016llx",
                  static_cast<unsigned long long>(
                      campaignKeyHash(key))) +
        ".beamlog";
    EXPECT_EQ(name, expect);
}

TEST_F(StoreTest, SaveThenLoadRoundTrips)
{
    CampaignRaw raw = campaign();
    CampaignStore store(dir_);
    store.save(raw);
    EXPECT_TRUE(
        std::filesystem::exists(store.pathFor(campaignKey(raw))));

    std::optional<CampaignRaw> back =
        store.load(campaignKey(raw));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.misses(), 0u);
    EXPECT_TRUE(sameRuns(raw, *back));

    // Analysis of the cached campaign is bit-identical.
    AnalysisConfig acfg;
    CampaignResult a = analyzeCampaign(raw, acfg);
    CampaignResult b = analyzeCampaign(*back, acfg);
    EXPECT_EQ(a.fitTotalAu(true), b.fitTotalAu(true));
    EXPECT_EQ(a.fitTotalAu(false), b.fitTotalAu(false));
}

TEST_F(StoreTest, MissingEntryIsAMissAndCounts)
{
    CampaignStore store(dir_);
    uint64_t global_miss = StatsRegistry::global()
                               .counter("campaign.store.miss")
                               .value();
    CampaignKey key{"K40", "DGEMM", "64x64", SimConfig{}};
    EXPECT_FALSE(store.load(key).has_value());
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.misses(), 1u);
    EXPECT_EQ(StatsRegistry::global()
                  .counter("campaign.store.miss")
                  .value(),
              global_miss + 1);
}

TEST_F(StoreTest, MismatchedEntryWarnsAndMisses)
{
    // An entry whose header does not match its key (hash collision
    // or hand-edited cache) must be a warned miss, not bad data.
    CampaignRaw raw = campaign(40, 11);
    CampaignStore store(dir_);
    CampaignKey other = campaignKey(raw);
    other.sim.seed = 13;
    writeBeamLogFile(raw, store.pathFor(other));

    MemoryTraceSink sink;
    setTraceSink(&sink);
    bool quiet = isQuiet();
    setQuiet(true);
    std::optional<CampaignRaw> r = store.load(other);
    setQuiet(quiet);
    setTraceSink(nullptr);

    EXPECT_FALSE(r.has_value());
    EXPECT_EQ(store.misses(), 1u);
    ASSERT_EQ(sink.logs().size(), 1u);
    EXPECT_EQ(sink.logs()[0].first, "warn");
    EXPECT_NE(sink.logs()[0].second.find(
                  "does not match its key"),
              std::string::npos);

    // The bad entry is quarantined, not left to fail every later
    // lookup: moved aside with the dedicated counter bumped.
    EXPECT_EQ(store.quarantined(), 1u);
    EXPECT_FALSE(
        std::filesystem::exists(store.pathFor(other)));
    EXPECT_TRUE(std::filesystem::exists(store.pathFor(other) +
                                        ".quarantined"));
}

TEST_F(StoreTest, CorruptEntryIsQuarantinedAfterRetry)
{
    // Bytes that fail to parse twice are quarantined (renamed
    // aside for autopsy), counted in the dedicated counter, and
    // reported as a plain miss so the caller re-simulates.
    CampaignRaw raw = campaign(40, 11);
    CampaignStore store(dir_);
    store.save(raw);
    std::string path = store.pathFor(campaignKey(raw));
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) / 2);
    uint64_t global_q = StatsRegistry::global()
                            .counter("campaign.store.quarantined")
                            .value();

    bool quiet = isQuiet();
    setQuiet(true);
    std::optional<CampaignRaw> r =
        store.load(campaignKey(raw));
    setQuiet(quiet);

    EXPECT_FALSE(r.has_value());
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.misses(), 1u);
    EXPECT_EQ(store.quarantined(), 1u);
    EXPECT_EQ(StatsRegistry::global()
                  .counter("campaign.store.quarantined")
                  .value(),
              global_q + 1);
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(
        std::filesystem::exists(path + ".quarantined"));

    // The quarantined key behaves like an empty slot: a fresh
    // save round-trips again.
    store.save(raw);
    EXPECT_TRUE(store.load(campaignKey(raw)).has_value());
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.quarantined(), 1u);
}

TEST_F(StoreTest, SimulateOrLoadRecoversFromCorruptEntry)
{
    CampaignStore store(dir_);
    SimConfig cfg;
    cfg.faultyRuns = 40;
    cfg.seed = 11;
    CampaignRaw first =
        simulateOrLoad(device_, dgemm_, cfg, &store);
    std::string path =
        store.pathFor(CampaignKey{device_.name, dgemm_.name(),
                                  dgemm_.inputLabel(), cfg});
    std::ofstream(path, std::ios::trunc) << "garbage\n";

    bool quiet = isQuiet();
    setQuiet(true);
    CampaignRaw second =
        simulateOrLoad(device_, dgemm_, cfg, &store);
    setQuiet(quiet);

    EXPECT_EQ(store.quarantined(), 1u);
    EXPECT_TRUE(sameRuns(first, second));
    // The re-simulation replaced the entry; the next call hits.
    simulateOrLoad(device_, dgemm_, cfg, &store);
    EXPECT_EQ(store.hits(), 1u);
}

TEST_F(StoreTest, SimulateOrLoadHitsOnSecondCall)
{
    CampaignStore store(dir_);
    SimConfig cfg;
    cfg.faultyRuns = 40;
    cfg.seed = 11;
    uint64_t global_hit = StatsRegistry::global()
                              .counter("campaign.store.hit")
                              .value();

    CampaignRaw first =
        simulateOrLoad(device_, dgemm_, cfg, &store);
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.misses(), 1u);

    CampaignRaw second =
        simulateOrLoad(device_, dgemm_, cfg, &store);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.misses(), 1u);
    EXPECT_EQ(StatsRegistry::global()
                  .counter("campaign.store.hit")
                  .value(),
              global_hit + 1);
    EXPECT_TRUE(sameRuns(first, second));

    // The loaded campaign carries a rebuilt launch and sim-side
    // stats, and analyzes bit-identically to the simulated one.
    EXPECT_EQ(second.launch.traits.totalThreads,
              first.launch.traits.totalThreads);
    EXPECT_DOUBLE_EQ(second.launch.occupancy,
                     first.launch.occupancy);
    EXPECT_FALSE(second.stats.entries.empty());
    AnalysisConfig acfg;
    CampaignResult a = analyzeCampaign(first, acfg);
    CampaignResult b = analyzeCampaign(second, acfg);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].crit.numIncorrect,
                  b.runs[i].crit.numIncorrect);
        EXPECT_EQ(a.runs[i].crit.meanRelErrPct,
                  b.runs[i].crit.meanRelErrPct);
    }
    EXPECT_EQ(a.fitTotalAu(true), b.fitTotalAu(true));
}

TEST_F(StoreTest, NullStoreIsPlainSimulation)
{
    SimConfig cfg;
    cfg.faultyRuns = 30;
    cfg.seed = 5;
    CampaignRaw direct = simulateCampaign(device_, dgemm_, cfg);
    CampaignRaw via = simulateOrLoad(device_, dgemm_, cfg,
                                     nullptr);
    EXPECT_TRUE(sameRuns(direct, via));
}

} // anonymous namespace
} // namespace radcrit
