/**
 * @file
 * Tests for the parallel campaign engine: bit-identical results for
 * any worker count, single-run replay through simulateRun, ordered
 * trace emission, and stat-name sanitization.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "campaign/engine.hh"
#include "campaign/runner.hh"
#include "campaign/series.hh"
#include "kernels/dgemm.hh"
#include "kernels/hotspot.hh"
#include "obs/stats_registry.hh"
#include "obs/trace.hh"

namespace radcrit
{
namespace
{

CampaignConfig
config(uint64_t runs, unsigned jobs, uint64_t seed = 7)
{
    CampaignConfig cfg;
    cfg.sim.faultyRuns = runs;
    cfg.sim.seed = seed;
    cfg.sim.jobs = jobs;
    return cfg;
}

/** One big string of every runRows() cell, for byte comparison. */
std::string
flattenRows(const CampaignResult &res)
{
    std::string out;
    for (const auto &row : runRows(res)) {
        for (const auto &cell : row) {
            out += cell;
            out += '\x1f';
        }
        out += '\n';
    }
    return out;
}

/**
 * The deterministic subset of a campaign stats snapshot: everything
 * except wall-clock quantities (".ns" counters and the phase-timer
 * latency histograms, whose samples are timings).
 */
bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(),
                  suffix) == 0;
}

std::vector<StatsSnapshot::Entry>
deterministicStats(const StatsSnapshot &snap)
{
    std::vector<StatsSnapshot::Entry> out;
    for (const auto &e : snap.entries) {
        // PhaseTimer emits "<name>.ns" counters and "<name>.hist"
        // latency histograms; both carry wall-clock samples.
        bool timing = endsWith(e.name, ".ns") ||
            endsWith(e.name, ".hist");
        if (!timing)
            out.push_back(e);
    }
    return out;
}

void
expectSameStats(const StatsSnapshot &a, const StatsSnapshot &b)
{
    auto da = deterministicStats(a);
    auto db = deterministicStats(b);
    ASSERT_EQ(da.size(), db.size());
    for (size_t i = 0; i < da.size(); ++i) {
        SCOPED_TRACE(da[i].name);
        EXPECT_EQ(da[i].name, db[i].name);
        EXPECT_EQ(da[i].kind, db[i].kind);
        EXPECT_EQ(da[i].value, db[i].value);
        EXPECT_EQ(da[i].count, db[i].count);
        EXPECT_EQ(da[i].sum, db[i].sum);
        EXPECT_EQ(da[i].min, db[i].min);
        EXPECT_EQ(da[i].max, db[i].max);
        EXPECT_EQ(da[i].buckets, db[i].buckets);
    }
}

TEST(EngineDeterminism, JobsCountDoesNotChangeResults)
{
    DeviceModel device = makeK40();
    Dgemm serial(device, 64, 42);
    CampaignResult base =
        runCampaign(device, serial, config(60, 1));
    std::string base_rows = flattenRows(base);

    for (unsigned jobs : {2u, 8u}) {
        Dgemm dgemm(device, 64, 42);
        CampaignResult res =
            runCampaign(device, dgemm, config(60, jobs));
        ASSERT_EQ(res.runs.size(), base.runs.size());
        for (size_t i = 0; i < res.runs.size(); ++i) {
            EXPECT_EQ(res.runs[i].index, i);
            EXPECT_EQ(res.runs[i].outcome, base.runs[i].outcome);
        }
        EXPECT_EQ(flattenRows(res), base_rows)
            << "jobs=" << jobs;
        expectSameStats(base.stats, res.stats);
    }
}

TEST(EngineDeterminism, HotSpotCloneReplaysIdentically)
{
    DeviceModel device = makeK40();
    HotSpot serial(device, 64, 96, 42);
    CampaignResult base =
        runCampaign(device, serial, config(40, 1, 11));
    HotSpot parallel(device, 64, 96, 42);
    CampaignResult res =
        runCampaign(device, parallel, config(40, 4, 11));
    EXPECT_EQ(flattenRows(res), flattenRows(base));
}

TEST(EngineReplay, SingleRunReproducesCampaignRecord)
{
    DeviceModel device = makeK40();
    Dgemm dgemm(device, 64, 42);
    CampaignConfig cfg = config(50, 1, 23);
    CampaignResult res = runCampaign(device, dgemm, cfg);

    KernelLaunch launch = buildLaunch(device, dgemm.traits());
    StrikeSampler sampler(device, launch);
    RelativeErrorFilter filter(
        cfg.analysis.filterThresholdPct);
    for (uint64_t k : {0ull, 17ull, 49ull}) {
        Rng rng = runRng(cfg.sim, k);
        RawRun run = simulateRun(sampler, dgemm, cfg.sim, k, rng);
        EXPECT_EQ(run.index, k);
        EXPECT_EQ(run.outcome, res.runs[k].outcome);
        EXPECT_EQ(run.strike.resource,
                  res.runs[k].strike.resource);
        EXPECT_EQ(run.strike.manifestation,
                  res.runs[k].strike.manifestation);
        EXPECT_EQ(run.strike.timeFraction,
                  res.runs[k].strike.timeFraction);
        if (run.outcome == Outcome::Sdc) {
            CriticalityReport crit = analyzeCriticality(
                run.record, filter, cfg.analysis.locality);
            EXPECT_EQ(crit.numIncorrect,
                      res.runs[k].crit.numIncorrect);
            EXPECT_EQ(crit.meanRelErrPct,
                      res.runs[k].crit.meanRelErrPct);
        }
    }
}

TEST(EngineRng, RunStreamsAreIndependentOfEachOther)
{
    CampaignConfig cfg = config(4, 1, 99);
    Rng a = runRng(cfg.sim, 0);
    Rng a2 = runRng(cfg.sim, 0);
    EXPECT_EQ(a.next64(), a2.next64());
    // Distinct runs draw from distinct streams.
    Rng c = runRng(cfg.sim, 0);
    Rng d = runRng(cfg.sim, 1);
    bool differs = false;
    for (int i = 0; i < 8; ++i)
        differs |= c.next64() != d.next64();
    EXPECT_TRUE(differs);
}

TEST(EngineTrace, ParallelTraceIsInRunOrder)
{
    MemoryTraceSink memory;
    TraceSink *prev = setTraceSink(&memory);
    DeviceModel device = makeK40();
    Dgemm dgemm(device, 64, 42);
    runCampaign(device, dgemm, config(40, 8));
    setTraceSink(prev);

    auto strikes = memory.strikes();
    ASSERT_EQ(strikes.size(), 40u);
    for (size_t i = 0; i < strikes.size(); ++i)
        EXPECT_EQ(strikes[i].run, i);
}

TEST(OrderedSink, ReordersOutOfOrderRecords)
{
    MemoryTraceSink memory;
    OrderedTraceSink ordered(&memory);
    StrikeTraceRecord rec;
    for (uint64_t run : {2ull, 0ull, 3ull, 1ull}) {
        rec.run = run;
        ordered.strike(rec);
    }
    EXPECT_EQ(ordered.pending(), 0u);
    auto got = memory.strikes();
    ASSERT_EQ(got.size(), 4u);
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(got[i].run, i);
}

TEST(OrderedSink, DrainFlushesGaps)
{
    MemoryTraceSink memory;
    {
        OrderedTraceSink ordered(&memory);
        StrikeTraceRecord rec;
        rec.run = 5;
        ordered.strike(rec);
        rec.run = 3;
        ordered.strike(rec);
        EXPECT_EQ(ordered.pending(), 2u);
        // Destructor drains the remainder in index order.
    }
    auto got = memory.strikes();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].run, 3u);
    EXPECT_EQ(got[1].run, 5u);
}

TEST(StatToken, SanitizesNonAlphanumerics)
{
    EXPECT_EQ(statToken("K40"), "k40");
    EXPECT_EQ(statToken("Xeon Phi"), "xeon_phi");
    EXPECT_EQ(statToken("v1.2-rc/3"), "v1_2_rc_3");
    EXPECT_EQ(statToken(""), "");
}

} // anonymous namespace
} // namespace radcrit
