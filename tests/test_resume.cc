/**
 * @file
 * Tests for checkpoint/resume: the shard writer/reader round trip,
 * torn-tail recovery (a SIGKILL mid-append must cost at most the
 * one unfinished record), identity safety (a shard from a
 * different campaign is fatal, a shard can never parse as a
 * finished campaign log), and end-to-end resume equivalence — a
 * resumed campaign is byte-identical to one that ran through.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "campaign/runner.hh"
#include "common/logging.hh"
#include "kernels/dgemm.hh"
#include "logs/beamlog.hh"
#include "obs/stats_registry.hh"
#include "obs/trace.hh"

namespace radcrit
{
namespace
{

class ResumeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = ::testing::TempDir() + "radcrit_resume_" +
            info->name();
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        shard_ = dir_ + "/campaign.shard";
        wasQuiet_ = isQuiet();
        setQuiet(true); // torn-tail recovery warns by design
    }

    void
    TearDown() override
    {
        setQuiet(wasQuiet_);
        setTraceSink(nullptr);
        std::filesystem::remove_all(dir_);
    }

    CampaignRaw
    campaign(uint64_t runs = 30, uint64_t seed = 11)
    {
        SimConfig cfg;
        cfg.faultyRuns = runs;
        cfg.seed = seed;
        return simulateCampaign(device_, dgemm_, cfg);
    }

    static std::string
    serialize(const CampaignRaw &raw)
    {
        std::ostringstream os;
        writeBeamLog(raw, os);
        return os.str();
    }

    static uint64_t
    fileSize(const std::string &path)
    {
        return std::filesystem::file_size(path);
    }

    static void
    truncateBy(const std::string &path, uint64_t bytes)
    {
        std::filesystem::resize_file(
            path, std::filesystem::file_size(path) - bytes);
    }

    DeviceModel device_ = makeK40();
    Dgemm dgemm_{device_, 64, 42};
    std::string dir_;
    std::string shard_;
    bool wasQuiet_ = false;
};

TEST_F(ResumeTest, WriterReaderRoundTripsEveryRecord)
{
    CampaignRaw raw = campaign();
    {
        CheckpointWriter writer(shard_, raw);
        for (const RawRun &run : raw.runs)
            writer.append(run);
        EXPECT_EQ(writer.appended(), raw.runs.size());
    }

    CheckpointRecovery rec = readCheckpointShards(shard_, raw);
    EXPECT_TRUE(rec.found);
    EXPECT_EQ(rec.tornRecords, 0u);
    EXPECT_EQ(rec.validBytes, fileSize(shard_));
    ASSERT_EQ(rec.runs.size(), raw.runs.size());
    for (size_t i = 0; i < rec.runs.size(); ++i) {
        EXPECT_EQ(rec.runs[i].index, raw.runs[i].index);
        EXPECT_EQ(rec.runs[i].outcome, raw.runs[i].outcome);
        EXPECT_EQ(rec.runs[i].strike.resource,
                  raw.runs[i].strike.resource);
        EXPECT_EQ(rec.runs[i].record.numIncorrect(),
                  raw.runs[i].record.numIncorrect());
    }
}

TEST_F(ResumeTest, MissingShardStartsClean)
{
    CampaignRaw raw = campaign(10);
    CheckpointRecovery rec =
        readCheckpointShards(dir_ + "/nope.shard", raw);
    EXPECT_FALSE(rec.found);
    EXPECT_TRUE(rec.runs.empty());
    EXPECT_EQ(rec.validBytes, 0u);
}

TEST_F(ResumeTest, HeaderlessFileStartsClean)
{
    std::ofstream(shard_) << "this is not a shard\n";
    CampaignRaw raw = campaign(10);
    CheckpointRecovery rec = readCheckpointShards(shard_, raw);
    EXPECT_FALSE(rec.found);
    EXPECT_TRUE(rec.runs.empty());
    EXPECT_EQ(rec.validBytes, 0u);
}

TEST_F(ResumeTest, TornTrailingRecordIsDroppedAndCounted)
{
    CampaignRaw raw = campaign();
    {
        CheckpointWriter writer(shard_, raw);
        for (const RawRun &run : raw.runs)
            writer.append(run);
    }
    uint64_t whole = fileSize(shard_);
    // Chop into the last record's tail — the shape a SIGKILL
    // between write and flush leaves behind.
    truncateBy(shard_, 15);
    uint64_t torn_before = StatsRegistry::global()
        .counter("resilience.checkpoint.torn_records")
        .value();

    CheckpointRecovery rec = readCheckpointShards(shard_, raw);
    EXPECT_TRUE(rec.found);
    EXPECT_EQ(rec.tornRecords, 1u);
    EXPECT_EQ(rec.runs.size(), raw.runs.size() - 1);
    EXPECT_LT(rec.validBytes, whole - 15);
    EXPECT_EQ(StatsRegistry::global()
                  .counter("resilience.checkpoint.torn_records")
                  .value(),
              torn_before + 1);

    // Resuming the writer at validBytes discards the torn bytes;
    // re-appending the missing runs completes the shard again.
    std::set<uint64_t> have;
    for (const RawRun &run : rec.runs)
        have.insert(run.index);
    {
        CheckpointWriter writer(shard_, raw, rec.validBytes);
        for (const RawRun &run : raw.runs) {
            if (!have.count(run.index))
                writer.append(run);
        }
    }
    CheckpointRecovery again = readCheckpointShards(shard_, raw);
    EXPECT_EQ(again.tornRecords, 0u);
    EXPECT_EQ(again.runs.size(), raw.runs.size());
}

TEST_F(ResumeTest, UnterminatedTailLineIsTorn)
{
    // Even a well-formed final record is torn if its newline never
    // made it to disk: appending after unterminated bytes would
    // merge two lines into one corrupt record.
    CampaignRaw raw = campaign();
    {
        CheckpointWriter writer(shard_, raw);
        for (const RawRun &run : raw.runs)
            writer.append(run);
    }
    truncateBy(shard_, 1); // exactly the trailing '\n'

    CheckpointRecovery rec = readCheckpointShards(shard_, raw);
    EXPECT_TRUE(rec.found);
    EXPECT_EQ(rec.tornRecords, 1u);
    EXPECT_EQ(rec.runs.size(), raw.runs.size() - 1);
}

TEST_F(ResumeTest, ForeignShardIsFatal)
{
    CampaignRaw raw = campaign(20, 11);
    {
        CheckpointWriter writer(shard_, raw);
        writer.append(raw.runs[0]);
    }
    CampaignRaw other = campaign(20, 13);
    EXPECT_EXIT(readCheckpointShards(shard_, other),
                ::testing::ExitedWithCode(1),
                "belongs to a different campaign");
}

TEST_F(ResumeTest, StrictReaderRejectsShardFiles)
{
    // A half-finished shard must never be mistaken for a complete
    // campaign log by the store or --load path.
    CampaignRaw raw = campaign(10);
    {
        CheckpointWriter writer(shard_, raw);
        for (const RawRun &run : raw.runs)
            writer.append(run);
    }
    std::string error;
    EXPECT_FALSE(tryReadBeamLogFile(shard_, &error).has_value());
    EXPECT_NE(error.find("unknown beam-log keyword '#SHARD'"),
              std::string::npos)
        << error;
}

TEST_F(ResumeTest, FlushEveryBatchesButLosesNothingOnClose)
{
    CampaignRaw raw = campaign(10);
    {
        CheckpointWriter writer(shard_, raw, 0, 4);
        for (const RawRun &run : raw.runs)
            writer.append(run);
    }
    CheckpointRecovery rec = readCheckpointShards(shard_, raw);
    EXPECT_EQ(rec.runs.size(), raw.runs.size());
    EXPECT_EQ(rec.tornRecords, 0u);
}

TEST_F(ResumeTest, ResumedCampaignIsByteIdentical)
{
    SimConfig cfg;
    cfg.faultyRuns = 30;
    cfg.seed = 11;
    CampaignRaw base = simulateCampaign(device_, dgemm_, cfg);

    // Simulate the kill: a shard holding only the first 18
    // completed runs.
    {
        CheckpointWriter writer(shard_, base);
        for (uint64_t i = 0; i < 18; ++i)
            writer.append(base.runs[i]);
    }

    SimConfig resume = cfg;
    resume.resilience.checkpointPath = shard_;
    resume.resilience.resume = true;
    Dgemm fresh(device_, 64, 42);
    CampaignRaw resumed =
        simulateCampaign(device_, fresh, resume);

    EXPECT_EQ(serialize(resumed), serialize(base));
    EXPECT_EQ(resumed.stats.value("resilience.resumed_runs"),
              18.0);
    // The shard now carries the remainder too: a second resume
    // replays everything.
    CheckpointRecovery rec = readCheckpointShards(shard_, base);
    EXPECT_EQ(rec.runs.size(), 30u);

    SimConfig resume2 = resume;
    Dgemm fresh2(device_, 64, 42);
    CampaignRaw all = simulateCampaign(device_, fresh2, resume2);
    EXPECT_EQ(serialize(all), serialize(base));
    EXPECT_EQ(all.stats.value("resilience.resumed_runs"), 30.0);
}

TEST_F(ResumeTest, ResumedStatsMatchUninterruptedCampaign)
{
    SimConfig cfg;
    cfg.faultyRuns = 30;
    cfg.seed = 11;
    CampaignRaw base = simulateCampaign(device_, dgemm_, cfg);
    {
        CheckpointWriter writer(shard_, base);
        for (uint64_t i = 0; i < 12; ++i)
            writer.append(base.runs[i]);
    }
    SimConfig resume = cfg;
    resume.resilience.checkpointPath = shard_;
    resume.resilience.resume = true;
    Dgemm fresh(device_, 64, 42);
    CampaignRaw resumed =
        simulateCampaign(device_, fresh, resume);

    // The resumed runs' outcome counters and histograms are
    // rebuilt, so every result-shaped campaign entry agrees with
    // the clean run. (Execution telemetry — kernel inject counts,
    // phase call/latency instruments — legitimately differs: only
    // the pending runs executed.)
    auto timing = [](const std::string &name) {
        auto ends = [&](const char *sfx) {
            std::string s(sfx);
            return name.size() >= s.size() &&
                name.compare(name.size() - s.size(), s.size(),
                             s) == 0;
        };
        return ends(".ns") || ends(".hist");
    };
    size_t compared = 0;
    for (const auto &e : base.stats.entries) {
        if (e.name.rfind("campaign.k40.dgemm.", 0) != 0 ||
            timing(e.name))
            continue;
        SCOPED_TRACE(e.name);
        ++compared;
        if (e.kind == StatKind::Histogram) {
            for (const auto &r : resumed.stats.entries) {
                if (r.name != e.name)
                    continue;
                EXPECT_EQ(r.count, e.count);
                EXPECT_EQ(r.sum, e.sum);
                EXPECT_EQ(r.buckets, e.buckets);
            }
        } else {
            EXPECT_EQ(resumed.stats.value(e.name), e.value);
        }
    }
    EXPECT_GT(compared, 3u);
}

TEST_F(ResumeTest, ResumeWithoutCheckpointPathIsFatal)
{
    SimConfig cfg;
    cfg.faultyRuns = 5;
    cfg.resilience.resume = true;
    EXPECT_EXIT(simulateCampaign(device_, dgemm_, cfg),
                ::testing::ExitedWithCode(1),
                "resume needs a checkpoint path");
}

} // anonymous namespace
} // namespace radcrit
