/**
 * @file
 * Tests for the HTML report builder and the campaign report: HTML
 * escaping, self-containment (no external fetches), deterministic
 * rendering, and the report rendered from the golden beam log.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "campaign/report.hh"
#include "campaign/runner.hh"
#include "logs/beamlog.hh"
#include "obs/report.hh"
#include "obs/timeline.hh"

namespace radcrit
{
namespace
{

TEST(HtmlEscape, EscapesMarkupMetacharacters)
{
    EXPECT_EQ(htmlEscape("a < b && c > d"),
              "a &lt; b &amp;&amp; c &gt; d");
    EXPECT_EQ(htmlEscape("\"quoted\" & 'single'"),
              "&quot;quoted&quot; &amp; &#39;single&#39;");
    EXPECT_EQ(htmlEscape("plain text 123"), "plain text 123");
    EXPECT_EQ(htmlEscape(""), "");
}

TEST(HtmlReportBuilder, SectionsTablesAndChartsRender)
{
    HtmlReport report("unit <report>");
    report.section("Numbers & things");
    report.paragraph("hello <world>");
    report.keyValues({{"key", "value"}, {"k2", "v2"}});
    report.table({"a", "b"}, {{"1", "2"}, {"3", "4"}});
    report.barChart("bars", {{"x", 2.0}, {"y", 1.0}});

    std::string html = report.str();
    // Title and headings are escaped.
    EXPECT_NE(html.find("unit &lt;report&gt;"), std::string::npos);
    EXPECT_NE(html.find("Numbers &amp; things"),
              std::string::npos);
    EXPECT_NE(html.find("hello &lt;world&gt;"), std::string::npos);
    EXPECT_EQ(html.find("<world>"), std::string::npos);
    // Structure: one table, one inline SVG chart.
    EXPECT_NE(html.find("<table>"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
}

TEST(HtmlReportBuilder, RenderingIsDeterministic)
{
    auto build = []() {
        HtmlReport report("same");
        report.section("s");
        report.barChart("c", {{"a", 1.0}, {"b", 0.5}});
        return report.str();
    };
    EXPECT_EQ(build(), build());
}

TEST(HtmlReportBuilder, LogHistogramPlotsOccupiedBuckets)
{
    StatsSnapshot::Entry hist;
    hist.name = "campaign.test.hist";
    hist.kind = StatKind::Histogram;
    hist.count = 7;
    hist.buckets = {{0, 3}, {4, 4}};

    HtmlReport report("hist");
    report.logHistogram("campaign.test.hist", hist);
    std::string html = report.str();
    EXPECT_NE(html.find("campaign.test.hist"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);
}

TEST(HtmlReportBuilder, PhaseAttributionSharesSumToTotal)
{
    StatsSnapshot snap;
    StatsSnapshot::Entry a;
    a.name = "phase.one.ns";
    a.kind = StatKind::Counter;
    a.value = 750.0 * 1e6;
    StatsSnapshot::Entry b;
    b.name = "phase.two.ns";
    b.kind = StatKind::Counter;
    b.value = 250.0 * 1e6;
    snap.entries = {a, b};

    HtmlReport report("phases");
    report.phaseAttribution(snap, {"phase.one", "phase.two"});
    std::string html = report.str();
    EXPECT_NE(html.find("phase.one"), std::string::npos);
    EXPECT_NE(html.find("75.0%"), std::string::npos);
    EXPECT_NE(html.find("25.0%"), std::string::npos);
}

/** The golden-beamlog campaign report, built once per test. */
std::string
goldenReport(const Timeline *timeline = nullptr)
{
    CampaignRaw raw = readBeamLogFile(
        RADCRIT_GOLDEN_DIR "/beamlog_dgemm_k40.beamlog");
    CampaignResult res = analyzeCampaign(raw, AnalysisConfig{});
    std::ostringstream os;
    writeCampaignReport(os, res, timeline);
    return os.str();
}

TEST(CampaignReport, GoldenBeamlogRendersCompleteDocument)
{
    std::string html = goldenReport();
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("</html>"), std::string::npos);
    // Campaign identity and every section heading.
    EXPECT_NE(html.find("K40"), std::string::npos);
    EXPECT_NE(html.find("DGEMM"), std::string::npos);
    for (const char *heading :
         {"Campaign", "Outcome breakdown", "Criticality and FIT",
          "Wall-clock attribution", "Distributions"}) {
        SCOPED_TRACE(heading);
        EXPECT_NE(html.find(heading), std::string::npos);
    }
    EXPECT_NE(html.find("<svg"), std::string::npos);
}

TEST(CampaignReport, DocumentIsSelfContained)
{
    std::string html = goldenReport();
    // Single-file contract: no scripts, no external fetches, no
    // resource references of any kind.
    EXPECT_EQ(html.find("<script"), std::string::npos);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
    EXPECT_EQ(html.find("src="), std::string::npos);
    EXPECT_EQ(html.find("<link"), std::string::npos);
    EXPECT_EQ(html.find("@import"), std::string::npos);
}

TEST(CampaignReport, RenderingIsDeterministic)
{
    // Same result, same bytes: rendering is a pure function of the
    // analysis data (a fresh analyzeCampaign() carries fresh phase
    // timings, so determinism is per-result, modulo timestamps).
    CampaignRaw raw = readBeamLogFile(
        RADCRIT_GOLDEN_DIR "/beamlog_dgemm_k40.beamlog");
    CampaignResult res = analyzeCampaign(raw, AnalysisConfig{});
    std::ostringstream a, b;
    writeCampaignReport(a, res, nullptr);
    writeCampaignReport(b, res, nullptr);
    EXPECT_EQ(a.str(), b.str());
}

TEST(CampaignReport, TimelineAddsWorkerSection)
{
    EXPECT_EQ(goldenReport().find("Workers"), std::string::npos);

    Timeline tl;
    tl.lane(0, "campaign").span("simulate", "campaign", 0, 1000);
    tl.lane(1, "worker 0").span("run 0", "run", 10, 400);
    std::string html = goldenReport(&tl);
    EXPECT_NE(html.find("Workers"), std::string::npos);
    EXPECT_NE(html.find("worker 0"), std::string::npos);
}

} // anonymous namespace
} // namespace radcrit
