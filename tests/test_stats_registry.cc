/**
 * @file
 * Tests for the observability stats registry: instrument
 * registration, hierarchical snapshots, diffs, and dumps.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/stats_registry.hh"

namespace radcrit
{
namespace
{

TEST(CounterTest, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndReset)
{
    Gauge g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(3.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    g.set(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), -1.0);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(LogHistogramTest, BucketsArePowersOfTwo)
{
    LogHistogram h;
    h.add(0.0);   // bucket 0 (< 1)
    h.add(1.0);   // bucket 1: [1, 2)
    h.add(1.5);   // bucket 1
    h.add(2.0);   // bucket 2: [2, 4)
    h.add(1024.0); // bucket 11: [1024, 2048)
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(11), 1u);
    EXPECT_DOUBLE_EQ(LogHistogram::bucketLo(1), 1.0);
    EXPECT_DOUBLE_EQ(LogHistogram::bucketLo(11), 1024.0);
}

TEST(LogHistogramTest, MomentsTrackSamples)
{
    LogHistogram h;
    h.add(2.0);
    h.add(6.0);
    h.add(4.0);
    EXPECT_DOUBLE_EQ(h.sum(), 12.0);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_DOUBLE_EQ(h.min(), 2.0);
    EXPECT_DOUBLE_EQ(h.max(), 6.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogramTest, NegativeSamplesClampToBucketZero)
{
    LogHistogram h;
    h.add(-5.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_DOUBLE_EQ(h.min(), -5.0);
}

TEST(StatsRegistryTest, SameNameSameInstrument)
{
    StatsRegistry reg;
    Counter &a = reg.counter("x.y");
    Counter &b = reg.counter("x.y");
    EXPECT_EQ(&a, &b);
    a.inc();
    EXPECT_EQ(b.value(), 1u);
}

TEST(StatsRegistryDeathTest, KindMismatchPanics)
{
    StatsRegistry reg;
    reg.counter("x");
    EXPECT_DEATH(reg.gauge("x"), "is a counter");
}

TEST(StatsRegistryDeathTest, EmptyNamePanics)
{
    StatsRegistry reg;
    EXPECT_DEATH(reg.counter(""), "non-empty");
}

TEST(StatsRegistryTest, SnapshotSortedAndComplete)
{
    StatsRegistry reg;
    reg.counter("b.count").inc(2);
    reg.gauge("a.level").set(0.5);
    reg.histogram("c.hist").add(3.0);
    StatsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.entries.size(), 3u);
    EXPECT_EQ(snap.entries[0].name, "a.level");
    EXPECT_EQ(snap.entries[1].name, "b.count");
    EXPECT_EQ(snap.entries[2].name, "c.hist");
    EXPECT_EQ(snap.entries[0].kind, StatKind::Gauge);
    EXPECT_DOUBLE_EQ(snap.value("b.count"), 2.0);
    EXPECT_EQ(snap.entries[2].count, 1u);
}

TEST(StatsRegistryTest, PrefixSnapshotFilters)
{
    StatsRegistry reg;
    reg.counter("campaign.k40.dgemm.sdc").inc(3);
    reg.counter("campaign.k40.dgemm.masked").inc(1);
    reg.counter("campaign.k40.lavamd.sdc").inc(9);
    reg.counter("campaign.k40.dgemmx.sdc").inc(7);
    StatsSnapshot snap = reg.snapshot("campaign.k40.dgemm");
    ASSERT_EQ(snap.entries.size(), 2u);
    EXPECT_DOUBLE_EQ(snap.value("campaign.k40.dgemm.sdc"), 3.0);
    EXPECT_DOUBLE_EQ(snap.value("campaign.k40.dgemm.masked"),
                     1.0);
    // Exact-name match is also included.
    reg.counter("exact").inc();
    EXPECT_EQ(reg.snapshot("exact").entries.size(), 1u);
}

TEST(StatsRegistryTest, SinceDiffsCountersAndHistograms)
{
    StatsRegistry reg;
    Counter &c = reg.counter("c");
    LogHistogram &h = reg.histogram("h");
    Gauge &g = reg.gauge("g");
    c.inc(5);
    h.add(2.0);
    g.set(1.0);
    StatsSnapshot before = reg.snapshot();
    c.inc(7);
    h.add(100.0);
    g.set(2.0);
    StatsSnapshot delta = reg.snapshot().since(before);
    EXPECT_DOUBLE_EQ(delta.value("c"), 7.0);
    EXPECT_DOUBLE_EQ(delta.value("g"), 2.0); // gauges keep level
    const StatsSnapshot::Entry *hist = delta.find("h");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 1u);
    EXPECT_DOUBLE_EQ(hist->sum, 100.0);
    ASSERT_EQ(hist->buckets.size(), 1u);
    EXPECT_DOUBLE_EQ(LogHistogram::bucketLo(hist->buckets[0].first),
                     64.0);
}

TEST(StatsRegistryTest, SinceDropsIdleInstruments)
{
    StatsRegistry reg;
    reg.counter("busy").inc();
    reg.counter("idle").inc(4);
    StatsSnapshot before = reg.snapshot();
    reg.counter("busy").inc(2);
    StatsSnapshot delta = reg.snapshot().since(before);
    EXPECT_NE(delta.find("busy"), nullptr);
    EXPECT_EQ(delta.find("idle"), nullptr);
}

TEST(StatsRegistryTest, ResetZeroesEverything)
{
    StatsRegistry reg;
    reg.counter("c").inc(5);
    reg.histogram("h").add(9.0);
    reg.gauge("g").set(2.0);
    reg.reset();
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_EQ(reg.histogram("h").count(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
}

TEST(StatsRegistryTest, TextDumpMentionsEveryInstrument)
{
    StatsRegistry reg;
    reg.counter("alpha").inc(3);
    reg.gauge("beta").set(0.25);
    reg.histogram("gamma").add(10.0);
    std::ostringstream os;
    reg.snapshot().writeText(os);
    std::string text = os.str();
    EXPECT_NE(text.find("alpha = 3"), std::string::npos);
    EXPECT_NE(text.find("beta"), std::string::npos);
    EXPECT_NE(text.find("gamma"), std::string::npos);
}

TEST(StatsRegistryTest, JsonDumpIsWellFormedEnough)
{
    StatsRegistry reg;
    reg.counter("a.b").inc(2);
    reg.histogram("a.h").add(5.0);
    std::ostringstream os;
    reg.snapshot().writeJson(os);
    std::string json = os.str();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"a.b\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"counter\""),
              std::string::npos);
    EXPECT_NE(json.find("\"value\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(StatsRegistryTest, GlobalRegistryIsSingleton)
{
    EXPECT_EQ(&StatsRegistry::global(), &StatsRegistry::global());
}

} // anonymous namespace
} // namespace radcrit
