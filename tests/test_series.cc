/**
 * @file
 * Tests for the figure-series builders.
 */

#include <gtest/gtest.h>

#include "campaign/paperconfigs.hh"
#include "campaign/series.hh"
#include "check/statcheck.hh"
#include "kernels/dgemm.hh"

namespace radcrit
{
namespace
{

CampaignResult
smallCampaign()
{
    DeviceModel device = makeDevice(DeviceId::K40);
    Dgemm dgemm(device, 64, 42);
    CampaignConfig cfg;
    cfg.sim.faultyRuns = 150;
    cfg.sim.seed = 17;
    return runCampaign(device, dgemm, cfg);
}

TEST(SeriesTest, ScatterOnlySdcRuns)
{
    CampaignResult res = smallCampaign();
    ScatterSeries s = scatterSeries(res);
    EXPECT_EQ(s.xs.size(),
              static_cast<size_t>(res.count(Outcome::Sdc)));
    EXPECT_EQ(s.xs.size(), s.ys.size());
    EXPECT_EQ(s.label, res.inputLabel);
    for (double x : s.xs)
        EXPECT_GE(x, 1.0);
    for (double y : s.ys)
        EXPECT_GE(y, 0.0);
}

TEST(SeriesTest, LocalityBarsStructure)
{
    CampaignResult res = smallCampaign();
    LocalityBars bars = localityBars(res, patterns2d());
    ASSERT_EQ(bars.segmentNames.size(), 4u);
    EXPECT_EQ(bars.segmentNames[0], "Square");
    ASSERT_GE(bars.bars.size(), 1u);
    EXPECT_EQ(bars.bars[0].segments.size(), 4u);
    EXPECT_NE(bars.bars[0].label.find("All"), std::string::npos);
}

TEST(SeriesTest, FilteredBarSmaller)
{
    CampaignResult res = smallCampaign();
    LocalityBars bars = localityBars(res, patterns2d());
    if (bars.bars.size() == 2) {
        double all = 0.0, filtered = 0.0;
        for (double v : bars.bars[0].segments)
            all += v;
        for (double v : bars.bars[1].segments)
            filtered += v;
        EXPECT_LE(filtered, all);
        EXPECT_NE(bars.bars[1].label.find(">2%"),
                  std::string::npos);
        // (braced if-body keeps -Wdangling-else quiet)
    }
}

TEST(SeriesTest, PatternOrders)
{
    auto p2 = patterns2d();
    EXPECT_EQ(p2.size(), 4u);
    auto p3 = patterns3d();
    EXPECT_EQ(p3.size(), 5u);
    EXPECT_EQ(p3.front(), Pattern::Cubic);
}

TEST(SeriesTest, RunRowsMatchHeader)
{
    CampaignResult res = smallCampaign();
    auto header = runRowsHeader();
    auto rows = runRows(res);
    EXPECT_EQ(rows.size(), res.runs.size());
    for (const auto &row : rows) {
        EXPECT_GE(row.size(), 4u);
        EXPECT_LE(row.size(), header.size());
    }
}

TEST(SeriesTest, OutcomeDistributionHomogeneousAcrossSeeds)
{
    // Different campaign seeds must draw from one underlying
    // outcome distribution: a chi-squared homogeneity check over
    // the outcome counts of two seeds passes at alpha = 0.01.
    DeviceModel device = makeDevice(DeviceId::K40);
    Dgemm dgemm(device, 64, 42);
    auto counts = [&](uint64_t seed) {
        CampaignConfig cfg;
        cfg.sim.faultyRuns = 300;
        cfg.sim.seed = seed;
        CampaignResult res = runCampaign(device, dgemm, cfg);
        return std::vector<uint64_t>{
            res.count(Outcome::Masked), res.count(Outcome::Sdc),
            res.count(Outcome::Crash), res.count(Outcome::Hang)};
    };
    check::CheckResult c = check::chiSquaredHomogeneity(
        "outcome_distribution_across_seeds", counts(17),
        counts(99), 0.01);
    EXPECT_TRUE(c) << c.message;
}

TEST(SeriesTest, SdcRowsAreComplete)
{
    CampaignResult res = smallCampaign();
    auto rows = runRows(res);
    auto header = runRowsHeader();
    for (size_t i = 0; i < rows.size(); ++i) {
        if (res.runs[i].outcome == Outcome::Sdc) {
            EXPECT_EQ(rows[i].size(), header.size());
        }
    }
}

} // anonymous namespace
} // namespace radcrit
