/**
 * @file
 * Workload-contract property suite: every (device, workload,
 * manifestation) combination must satisfy the invariants the
 * campaign layer relies on — coordinates inside the output
 * extents, read values differing from expected, per-strike
 * determinism, and no duplicate elements.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <tuple>

#include "campaign/paperconfigs.hh"
#include "common/rng.hh"
#include "kernels/clamr.hh"
#include "kernels/dgemm.hh"
#include "kernels/hotspot.hh"
#include "kernels/lavamd.hh"

namespace radcrit
{
namespace
{

enum class Wl { Dgemm, LavaMd, HotSpot, Clamr };

std::unique_ptr<Workload>
makeSmall(Wl wl, const DeviceModel &device)
{
    switch (wl) {
      case Wl::Dgemm:
        return std::make_unique<Dgemm>(device, 64, 42);
      case Wl::LavaMd:
        return std::make_unique<LavaMd>(device, 5, 42, 2, 4, 11);
      case Wl::HotSpot:
        return std::make_unique<HotSpot>(device, 64, 64, 42);
      case Wl::Clamr:
        return std::make_unique<Clamr>(device, 64, 64, 42);
    }
    return nullptr;
}

using Param = std::tuple<DeviceId, Wl, Manifestation>;

class WorkloadContractTest
    : public ::testing::TestWithParam<Param>
{
};

TEST_P(WorkloadContractTest, InvariantsHold)
{
    auto [device_id, wl, manifestation] = GetParam();
    DeviceModel device = makeDevice(device_id);
    auto workload = makeSmall(wl, device);

    // Strikes of this manifestation from plausible resources.
    std::vector<ResourceKind> sources;
    for (const auto &res : device.resources) {
        for (const auto &mw : res.manifestations) {
            if (mw.manifestation == manifestation)
                sources.push_back(res.kind);
        }
    }
    if (sources.empty())
        GTEST_SKIP() << "device never produces this "
                        "manifestation";

    Rng rng(99);
    SdcRecord shape = workload->emptyRecord();
    for (int trial = 0; trial < 12; ++trial) {
        Strike strike;
        strike.resource = sources[rng.uniformInt(sources.size())];
        strike.manifestation = manifestation;
        strike.timeFraction = rng.uniform();
        strike.burstBits = 1 +
            static_cast<uint32_t>(rng.uniformInt(3));
        strike.entropy = rng.next64();

        Rng unused_a(1), unused_b(2);
        SdcRecord rec = workload->inject(strike, unused_a);

        // 1. Geometry matches the declared output shape.
        EXPECT_EQ(rec.dims, shape.dims);
        EXPECT_EQ(rec.extent, shape.extent);

        // 2. Every element is inside the extents and genuinely
        // mismatching.
        std::multiset<std::array<int64_t, 3>> coords;
        for (const auto &e : rec.elements) {
            for (int a = 0; a < 3; ++a) {
                EXPECT_GE(e.coord[a], 0);
                EXPECT_LT(e.coord[a], rec.extent[a]);
            }
            EXPECT_TRUE(e.read != e.expected ||
                        std::isnan(e.read));
            coords.insert(e.coord);
        }

        // 3. Duplicate coordinates only where several particles
        // share a box (3D records); never in 2D grids.
        if (rec.dims == 2) {
            std::set<std::array<int64_t, 3>> unique(
                coords.begin(), coords.end());
            EXPECT_EQ(unique.size(), coords.size());
        }

        // 4. Determinism: the record is a pure function of the
        // strike.
        SdcRecord again = workload->inject(strike, unused_b);
        ASSERT_EQ(again.numIncorrect(), rec.numIncorrect());
        for (size_t i = 0; i < rec.elements.size(); ++i) {
            EXPECT_EQ(again.elements[i].coord,
                      rec.elements[i].coord);
            // NaN != NaN: compare bit-level equality by hash of
            // the double's representation via ==, tolerating NaN.
            bool equal = again.elements[i].read ==
                rec.elements[i].read ||
                (std::isnan(again.elements[i].read) &&
                 std::isnan(rec.elements[i].read));
            EXPECT_TRUE(equal);
        }
    }
}

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    auto [device_id, wl, manifestation] = info.param;
    std::string name = deviceIdName(device_id);
    switch (wl) {
      case Wl::Dgemm: name += "_DGEMM"; break;
      case Wl::LavaMd: name += "_LavaMD"; break;
      case Wl::HotSpot: name += "_HotSpot"; break;
      case Wl::Clamr: name += "_CLAMR"; break;
    }
    name += std::string("_") + manifestationName(manifestation);
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, WorkloadContractTest,
    ::testing::Combine(
        ::testing::Values(DeviceId::K40, DeviceId::XeonPhi),
        ::testing::Values(Wl::Dgemm, Wl::LavaMd, Wl::HotSpot,
                          Wl::Clamr),
        ::testing::Values(Manifestation::BitFlipValue,
                          Manifestation::BitFlipInputLine,
                          Manifestation::WrongOperation,
                          Manifestation::SkippedChunk,
                          Manifestation::StaleData,
                          Manifestation::MisscheduledBlock)),
    paramName);

} // anonymous namespace
} // namespace radcrit
