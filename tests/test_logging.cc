/**
 * @file
 * Tests for the logging/formatting helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace radcrit
{
namespace
{

TEST(LoggingTest, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d", 42), "x=42");
    EXPECT_EQ(strprintf("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(strprintf("%.2f", 1.2345), "1.23");
}

TEST(LoggingTest, StrprintfEmpty)
{
    EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(LoggingTest, StrprintfLongString)
{
    std::string big(10000, 'x');
    std::string out = strprintf("[%s]", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out.back(), ']');
}

TEST(LoggingTest, QuietFlagRoundTrip)
{
    bool before = isQuiet();
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
    setQuiet(before);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "panic: boom 7");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

} // anonymous namespace
} // namespace radcrit
