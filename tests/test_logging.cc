/**
 * @file
 * Tests for the logging/formatting helpers.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace radcrit
{
namespace
{

TEST(LoggingTest, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d", 42), "x=42");
    EXPECT_EQ(strprintf("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(strprintf("%.2f", 1.2345), "1.23");
}

TEST(LoggingTest, StrprintfEmpty)
{
    EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(LoggingTest, StrprintfLongString)
{
    std::string big(10000, 'x');
    std::string out = strprintf("[%s]", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out.back(), ']');
}

TEST(LoggingTest, QuietFlagRoundTrip)
{
    bool before = isQuiet();
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
    setQuiet(before);
}

TEST(LoggingTest, ParseLogLevelNames)
{
    LogLevel level = LogLevel::Info;
    EXPECT_TRUE(parseLogLevel("silent", level));
    EXPECT_EQ(level, LogLevel::Silent);
    EXPECT_TRUE(parseLogLevel("QUIET", level));
    EXPECT_EQ(level, LogLevel::Silent);
    EXPECT_TRUE(parseLogLevel("error", level));
    EXPECT_EQ(level, LogLevel::Error);
    EXPECT_TRUE(parseLogLevel("Warn", level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("warning", level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("info", level));
    EXPECT_EQ(level, LogLevel::Info);
    EXPECT_FALSE(parseLogLevel("loud", level));
    EXPECT_FALSE(parseLogLevel(nullptr, level));
    EXPECT_EQ(level, LogLevel::Info); // unchanged on failure
}

TEST(LoggingTest, LogLevelFromEnvRecognizesCaseInsensitively)
{
    bool recognized = false;
    EXPECT_EQ(logLevelFromEnv("WARN", &recognized),
              LogLevel::Warn);
    EXPECT_TRUE(recognized);
    EXPECT_EQ(logLevelFromEnv("Quiet", &recognized),
              LogLevel::Silent);
    EXPECT_TRUE(recognized);
    EXPECT_EQ(logLevelFromEnv("error", &recognized),
              LogLevel::Error);
    EXPECT_TRUE(recognized);
}

TEST(LoggingTest, LogLevelFromEnvFallsBackToInfo)
{
    bool recognized = true;
    EXPECT_EQ(logLevelFromEnv("bogus", &recognized),
              LogLevel::Info);
    EXPECT_FALSE(recognized);
    recognized = true;
    EXPECT_EQ(logLevelFromEnv(nullptr, &recognized),
              LogLevel::Info);
    EXPECT_FALSE(recognized);
    recognized = true;
    EXPECT_EQ(logLevelFromEnv("", &recognized), LogLevel::Info);
    EXPECT_FALSE(recognized);
    // The out-parameter is optional.
    EXPECT_EQ(logLevelFromEnv("info"), LogLevel::Info);
}

TEST(LoggingTest, LogLevelRoundTrip)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(before);
}

std::vector<std::pair<std::string, std::string>> hookedMessages;

void
recordingHook(const char *level, const std::string &msg)
{
    hookedMessages.emplace_back(level, msg);
}

TEST(LoggingTest, HookSeesSuppressedMessages)
{
    LogLevel before = logLevel();
    bool quiet = isQuiet();
    hookedMessages.clear();
    setLogHook(recordingHook);
    setLogLevel(LogLevel::Silent);
    setQuiet(true);
    warn("suppressed warn");
    inform("suppressed info");
    setLogHook(nullptr);
    setQuiet(quiet);
    setLogLevel(before);
    ASSERT_EQ(hookedMessages.size(), 2u);
    EXPECT_EQ(hookedMessages[0].first, "warn");
    EXPECT_EQ(hookedMessages[0].second, "suppressed warn");
    EXPECT_EQ(hookedMessages[1].first, "info");
    EXPECT_EQ(hookedMessages[1].second, "suppressed info");
}

TEST(LoggingTest, NoHookNoFormattingSideEffects)
{
    setLogHook(nullptr);
    bool quiet = isQuiet();
    setQuiet(true);
    // Must not crash or print: quiet inform with no hook returns
    // before formatting.
    inform("never formatted %d", 3);
    setQuiet(quiet);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "panic: boom 7");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

} // anonymous namespace
} // namespace radcrit
