/**
 * @file
 * Integration tests: end-to-end campaigns must reproduce the
 * paper's qualitative findings. Every distributional claim is
 * stated as a named check:: assertion with an explicit
 * significance level: the test passes only when the observed
 * counts *demonstrate* the claim (the confidence bound clears the
 * stated threshold), and a failure message restates counts,
 * interval, and requirement. Campaigns are bit-identical for any
 * jobs count, so every verdict here is deterministic per seed.
 */

#include <gtest/gtest.h>

#include <memory>

#include "campaign/paperconfigs.hh"
#include "campaign/runner.hh"
#include "check/statcheck.hh"
#include "common/stats.hh"
#include "kernels/clamr.hh"
#include "kernels/dgemm.hh"
#include "kernels/hotspot.hh"
#include "kernels/lavamd.hh"

namespace radcrit
{
namespace
{

constexpr double kAlpha = 0.01;
/** Looser level for claims resting on few detectable events. */
constexpr double kAlphaLoose = 0.05;

CampaignResult
runFor(const DeviceModel &device, Workload &w, uint64_t runs = 250)
{
    CampaignConfig cfg = defaultCampaign(runs, device.name,
                                         w.name(),
                                         w.inputLabel());
    return runCampaign(device, w, cfg);
}

/** Number of SDC runs (the denominator of SDC-conditional shares). */
uint64_t
sdcRuns(const CampaignResult &res)
{
    return res.count(Outcome::Sdc);
}

/** SDC runs fully removed by the 2% relative-error filter. */
uint64_t
filteredOutRuns(const CampaignResult &res)
{
    uint64_t removed = 0;
    for (const auto &run : res.runs) {
        if (run.outcome == Outcome::Sdc &&
            run.crit.executionFiltered)
            ++removed;
    }
    return removed;
}

/** SDC runs whose pattern is one of `patterns`. */
uint64_t
patternRuns(const CampaignResult &res,
            std::initializer_list<Pattern> patterns)
{
    uint64_t hits = 0;
    for (const auto &run : res.runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        for (Pattern p : patterns) {
            if (run.crit.pattern == p) {
                ++hits;
                break;
            }
        }
    }
    return hits;
}

/** SDC runs with mean relative error below `pct`. */
uint64_t
mildRuns(const CampaignResult &res, double pct)
{
    uint64_t mild = 0;
    for (const auto &run : res.runs) {
        if (run.outcome == Outcome::Sdc &&
            run.crit.meanRelErrPct < pct)
            ++mild;
    }
    return mild;
}

uint64_t
detectableRuns(const CampaignResult &res)
{
    return res.count(Outcome::Crash) + res.count(Outcome::Hang);
}

TEST(IntegrationDgemm, K40FilterRemovesMajority)
{
    // Paper V-A: 50% to 75% of K40 DGEMM corrupted executions
    // have all elements below the 2% threshold (band widened for
    // the scaled-down inputs).
    DeviceModel k40 = makeDevice(DeviceId::K40);
    Dgemm dgemm(k40, 256);
    CampaignResult res = runFor(k40, dgemm);
    check::CheckResult c = check::proportionBetween(
        "k40_dgemm_filtered_out_fraction", filteredOutRuns(res),
        sdcRuns(res), 0.30, 0.85, kAlpha);
    EXPECT_TRUE(c) << c.message;
}

TEST(IntegrationDgemm, PhiErrorsAreExtreme)
{
    // Paper Fig. 2b: on the Phi almost all corrupted elements are
    // extremely different from the expected value; a majority of
    // SDC runs exceed 100% mean relative error...
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    Dgemm dgemm(phi, 256);
    CampaignResult res = runFor(phi, dgemm, 400);
    uint64_t sdc = sdcRuns(res);
    check::CheckResult extreme = check::proportionAtLeast(
        "phi_dgemm_extreme_error_share", sdc - mildRuns(res, 100.0),
        sdc, 0.5, kAlpha);
    EXPECT_TRUE(extreme) << extreme.message;
    // ...and almost nothing is filtered.
    check::CheckResult filtered = check::proportionAtMost(
        "phi_dgemm_filtered_out_fraction", filteredOutRuns(res),
        sdc, 0.30, kAlpha);
    EXPECT_TRUE(filtered) << filtered.message;
}

TEST(IntegrationDgemm, K40ErrorsAreMild)
{
    // Paper Fig. 2a: ~75% of K40 SDCs have mean relative error
    // below 10%. The scaled-down model lands near 55%, so
    // demonstrate mild errors are a large share (>= 40%) rather
    // than a tail — the Phi counterpart above is ~0.
    DeviceModel k40 = makeDevice(DeviceId::K40);
    Dgemm dgemm(k40, 256);
    CampaignResult res = runFor(k40, dgemm);
    ASSERT_GT(sdcRuns(res), 50u);
    check::CheckResult c = check::proportionAtLeast(
        "k40_dgemm_mild_error_share", mildRuns(res, 10.0),
        sdcRuns(res), 0.40, kAlpha);
    EXPECT_TRUE(c) << c.message;
}

TEST(IntegrationDgemm, K40FitGrowsWithInputPhiDoesNot)
{
    // Paper V-A: K40 FIT grows strongly with input size (hardware
    // scheduler + register exposure); the Phi's barely moves. FIT
    // is sensitiveArea * fitScale * sdc/runs, so FIT growth is the
    // (deterministic) area ratio times the SDC risk ratio; state
    // the bounds on the risk ratio accordingly.
    DeviceModel k40 = makeDevice(DeviceId::K40);
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    Dgemm k40_small(k40, 128), k40_big(k40, 512);
    Dgemm phi_small(phi, 128), phi_big(phi, 512);
    CampaignResult ks = runFor(k40, k40_small);
    CampaignResult kb = runFor(k40, k40_big);
    CampaignResult ps = runFor(phi, phi_small);
    CampaignResult pb = runFor(phi, phi_big);

    double k40_area_ratio =
        kb.sensitiveAreaAu / ks.sensitiveAreaAu;
    check::CheckResult grows = check::riskRatioAtLeast(
        "k40_dgemm_fit_growth_128_to_512", sdcRuns(kb),
        kb.runs.size(), sdcRuns(ks), ks.runs.size(),
        1.8 / k40_area_ratio, kAlphaLoose);
    EXPECT_TRUE(grows) << grows.message;

    double phi_area_ratio =
        pb.sensitiveAreaAu / ps.sensitiveAreaAu;
    check::CheckResult flat = check::riskRatioAtMost(
        "phi_dgemm_fit_growth_128_to_512", sdcRuns(pb),
        pb.runs.size(), sdcRuns(ps), ps.runs.size(),
        1.5 / phi_area_ratio, kAlphaLoose);
    EXPECT_TRUE(flat) << flat.message;

    double k40_growth = kb.fitTotalAu(false) /
        ks.fitTotalAu(false);
    double phi_growth = pb.fitTotalAu(false) /
        ps.fitTotalAu(false);
    EXPECT_GT(k40_growth, phi_growth);
}

TEST(IntegrationDgemm, K40CrashShareGrowsWithInput)
{
    // Paper V: "the larger the input, the higher the crashes and
    // hangs rate" (SDC:detectable falls from ~4x toward ~1.1x).
    DeviceModel k40 = makeDevice(DeviceId::K40);
    Dgemm small(k40, 128), big(k40, 512);
    CampaignResult rs = runFor(k40, small, 400);
    CampaignResult rb = runFor(k40, big, 400);
    check::CheckResult high = check::ratioAtLeast(
        "k40_dgemm_small_sdc_to_detectable", sdcRuns(rs),
        detectableRuns(rs), 2.0, kAlphaLoose);
    EXPECT_TRUE(high) << high.message;
    check::CheckResult low = check::ratioAtMost(
        "k40_dgemm_big_sdc_to_detectable", sdcRuns(rb),
        detectableRuns(rb), 3.0, kAlphaLoose);
    EXPECT_TRUE(low) << low.message;
    // The SDC share among decided (SDC or detectable) runs falls
    // with input size.
    check::CheckResult falls = check::proportionGreater(
        "k40_dgemm_sdc_share_small_vs_big", sdcRuns(rs),
        sdcRuns(rs) + detectableRuns(rs), sdcRuns(rb),
        sdcRuns(rb) + detectableRuns(rb), kAlphaLoose);
    EXPECT_TRUE(falls) << falls.message;
}

TEST(IntegrationLavaMd, PhiHasMoreElementsSmallerErrors)
{
    // Paper V-B: the Phi shows more incorrect elements than the
    // K40 but with an overall lower difference to the expected
    // values.
    DeviceModel k40 = makeDevice(DeviceId::K40);
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    LavaMd on_k40(k40, 7, 42, 2, 4, 15);
    LavaMd on_phi(phi, 7, 42, 2, 4, 15);
    CampaignResult rk = runFor(k40, on_k40);
    CampaignResult rp = runFor(phi, on_phi);

    RunningStat k40_elems, phi_elems;
    for (const auto &run : rk.runs) {
        if (run.outcome == Outcome::Sdc)
            k40_elems.add(static_cast<double>(
                run.crit.numIncorrect));
    }
    for (const auto &run : rp.runs) {
        if (run.outcome == Outcome::Sdc)
            phi_elems.add(static_cast<double>(
                run.crit.numIncorrect));
    }
    check::CheckResult c = check::meanGreater(
        "phi_vs_k40_lavamd_incorrect_elements", phi_elems,
        k40_elems, kAlpha);
    EXPECT_TRUE(c) << c.message;
}

TEST(IntegrationLavaMd, PhiIsCubicDominated)
{
    // Paper Fig. 5b: most Phi LavaMD errors are cubic and square.
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    LavaMd lava(phi, 9, 42, 2, 4, 19);
    CampaignResult res = runFor(phi, lava);
    check::CheckResult c = check::proportionAtLeast(
        "phi_lavamd_cubic_square_share",
        patternRuns(res, {Pattern::Cubic, Pattern::Square}),
        sdcRuns(res), 0.5, kAlpha);
    EXPECT_TRUE(c) << c.message;
}

TEST(IntegrationLavaMd, K40CubicShareDecreasesWithInput)
{
    // Paper V-B: K40 cubic+square falls from 55% to 42% as the
    // input grows (cache sharing decreases).
    DeviceModel k40 = makeDevice(DeviceId::K40);
    LavaMd small(k40, 7, 42, 2, 4, 15);
    LavaMd big(k40, 11, 42, 2, 4, 23);
    CampaignResult rs = runFor(k40, small, 400);
    CampaignResult rb = runFor(k40, big, 400);
    check::CheckResult c = check::proportionGreater(
        "k40_lavamd_cubic_square_share_small_vs_big",
        patternRuns(rs, {Pattern::Cubic, Pattern::Square}),
        sdcRuns(rs),
        patternRuns(rb, {Pattern::Cubic, Pattern::Square}),
        sdcRuns(rb), kAlphaLoose);
    EXPECT_TRUE(c) << c.message;
}

TEST(IntegrationLavaMd, PhiSdcRatioRisesWithInput)
{
    // Paper V: Phi LavaMD SDC:(crash+hang) grows from ~3x to ~12x
    // with input size.
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    LavaMd small(phi, 6, 42, 2, 4, 13);
    LavaMd big(phi, 11, 42, 2, 4, 23);
    CampaignResult rs = runFor(phi, small, 400);
    CampaignResult rb = runFor(phi, big, 400);
    check::CheckResult rises = check::proportionGreater(
        "phi_lavamd_sdc_share_big_vs_small", sdcRuns(rb),
        sdcRuns(rb) + detectableRuns(rb), sdcRuns(rs),
        sdcRuns(rs) + detectableRuns(rs), kAlphaLoose);
    EXPECT_TRUE(rises) << rises.message;
    check::CheckResult high = check::ratioAtLeast(
        "phi_lavamd_big_sdc_to_detectable", sdcRuns(rb),
        detectableRuns(rb), 3.5, kAlphaLoose);
    EXPECT_TRUE(high) << high.message;
}

TEST(IntegrationHotSpot, MostResilientCode)
{
    // Paper V-C: 80-95% of HotSpot faulty executions fall under
    // the 2% filter; mean relative errors stay below 25%; only
    // square/line patterns.
    DeviceModel k40 = makeDevice(DeviceId::K40);
    HotSpot hotspot(k40, 128, 192, 42);
    CampaignResult res = runFor(k40, hotspot, 400);
    check::CheckResult filtered = check::proportionAtLeast(
        "k40_hotspot_filtered_out_fraction",
        filteredOutRuns(res), sdcRuns(res), 0.70, kAlpha);
    EXPECT_TRUE(filtered) << filtered.message;
    for (const auto &run : res.runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        EXPECT_LT(run.crit.meanRelErrPct, 25.0);
        EXPECT_TRUE(run.crit.pattern == Pattern::Square ||
                    run.crit.pattern == Pattern::Line ||
                    run.crit.pattern == Pattern::Single)
            << patternName(run.crit.pattern);
    }
    // Highest SDC:(crash+hang) ratio of the K40 codes (paper: 7x).
    check::CheckResult ratio = check::ratioAtLeast(
        "k40_hotspot_sdc_to_detectable", sdcRuns(res),
        detectableRuns(res), 4.0, kAlphaLoose);
    EXPECT_TRUE(ratio) << ratio.message;
}

TEST(IntegrationClamr, WaveErrorsNeverRecover)
{
    // Paper V-D: CLAMR errors spread as a wave; square patterns
    // amount to ~99%; corrupted-element counts are huge.
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    Clamr clamr(phi, 96, 256, 42);
    CampaignResult res = runFor(phi, clamr, 120);
    check::CheckResult square = check::proportionAtLeast(
        "phi_clamr_square_share",
        patternRuns(res, {Pattern::Square}), sdcRuns(res), 0.85,
        kAlpha);
    EXPECT_TRUE(square) << square.message;
    RunningStat elems;
    for (const auto &run : res.runs) {
        if (run.outcome == Outcome::Sdc)
            elems.add(static_cast<double>(
                run.crit.numIncorrect));
    }
    // Large fractions of the 96x96 grid are corrupted.
    check::CheckResult big = check::meanAtLeast(
        "phi_clamr_incorrect_elements", elems, 500.0, kAlpha);
    EXPECT_TRUE(big) << big.message;
}

TEST(IntegrationCrossDevice, K40FitHigherThanPhi)
{
    // K40 (28 nm planar + hardware scheduling) shows higher
    // relative FIT than the Phi for the same code, as in Figs. 3,
    // 5, 7. FIT = area * scale * sdc/runs, so demonstrating
    // fit_k40 > fit_phi means the SDC risk ratio must exceed the
    // (deterministic) inverse sensitive-area ratio.
    DeviceModel k40 = makeDevice(DeviceId::K40);
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    Dgemm on_k40(k40, 256), on_phi(phi, 256);
    CampaignResult rk = runFor(k40, on_k40);
    CampaignResult rp = runFor(phi, on_phi);
    check::CheckResult c = check::riskRatioAtLeast(
        "k40_vs_phi_dgemm_fit", sdcRuns(rk), rk.runs.size(),
        sdcRuns(rp), rp.runs.size(),
        rp.sensitiveAreaAu / rk.sensitiveAreaAu, kAlphaLoose);
    EXPECT_TRUE(c) << c.message;
}

TEST(IntegrationCrossDevice, FilterImprovesK40DgemmReliability)
{
    // Paper V-A: tolerating 2% discrepancy makes the K40 at least
    // ~60% "more reliable" than counting every mismatch. The
    // filtered:unfiltered FIT ratio equals the surviving-run
    // share, so demonstrate that share is at most 0.65.
    DeviceModel k40 = makeDevice(DeviceId::K40);
    Dgemm dgemm(k40, 256);
    CampaignResult res = runFor(k40, dgemm);
    uint64_t sdc = sdcRuns(res);
    check::CheckResult c = check::proportionAtMost(
        "k40_dgemm_filter_surviving_share",
        sdc - filteredOutRuns(res), sdc, 0.65, kAlpha);
    EXPECT_TRUE(c) << c.message;
}

} // anonymous namespace
} // namespace radcrit
