/**
 * @file
 * Integration tests: end-to-end campaigns must reproduce the
 * paper's qualitative findings (loose bands; exact series are
 * produced by the bench harnesses and recorded in EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include <memory>

#include "campaign/paperconfigs.hh"
#include "campaign/runner.hh"
#include "common/stats.hh"
#include "kernels/clamr.hh"
#include "kernels/dgemm.hh"
#include "kernels/hotspot.hh"
#include "kernels/lavamd.hh"

namespace radcrit
{
namespace
{

CampaignResult
runFor(const DeviceModel &device, Workload &w, uint64_t runs = 250)
{
    CampaignConfig cfg = defaultCampaign(runs, device.name,
                                         w.name(),
                                         w.inputLabel());
    return runCampaign(device, w, cfg);
}

double
patternShare(const CampaignResult &res,
             std::initializer_list<Pattern> patterns)
{
    uint64_t hits = 0, sdc = 0;
    for (const auto &run : res.runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        ++sdc;
        for (Pattern p : patterns) {
            if (run.crit.pattern == p) {
                ++hits;
                break;
            }
        }
    }
    return sdc ? static_cast<double>(hits) /
        static_cast<double>(sdc) : 0.0;
}

double
medianRelErr(const CampaignResult &res)
{
    std::vector<double> errs;
    for (const auto &run : res.runs) {
        if (run.outcome == Outcome::Sdc)
            errs.push_back(run.crit.meanRelErrPct);
    }
    return errs.empty() ? 0.0 : quantile(errs, 0.5);
}

TEST(IntegrationDgemm, K40FilterRemovesMajority)
{
    // Paper V-A: 50% to 75% of K40 DGEMM corrupted executions
    // have all elements below the 2% threshold.
    DeviceModel k40 = makeDevice(DeviceId::K40);
    Dgemm dgemm(k40, 256);
    CampaignResult res = runFor(k40, dgemm);
    EXPECT_GE(res.filteredOutFraction(), 0.35);
    EXPECT_LE(res.filteredOutFraction(), 0.80);
}

TEST(IntegrationDgemm, PhiErrorsAreExtreme)
{
    // Paper Fig. 2b: on the Phi almost all corrupted elements are
    // extremely different from the expected value.
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    Dgemm dgemm(phi, 256);
    CampaignResult res = runFor(phi, dgemm);
    EXPECT_GT(medianRelErr(res), 100.0);
    // ...and almost nothing is filtered.
    EXPECT_LT(res.filteredOutFraction(), 0.30);
}

TEST(IntegrationDgemm, K40ErrorsAreMild)
{
    // Paper Fig. 2a: ~75% of K40 SDCs have mean relative error
    // below 10%.
    DeviceModel k40 = makeDevice(DeviceId::K40);
    Dgemm dgemm(k40, 256);
    CampaignResult res = runFor(k40, dgemm);
    uint64_t mild = 0, sdc = 0;
    for (const auto &run : res.runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        ++sdc;
        mild += run.crit.meanRelErrPct < 10.0;
    }
    ASSERT_GT(sdc, 50u);
    EXPECT_GT(static_cast<double>(mild) /
              static_cast<double>(sdc), 0.5);
}

TEST(IntegrationDgemm, K40FitGrowsWithInputPhiDoesNot)
{
    // Paper V-A: K40 FIT grows strongly with input size (hardware
    // scheduler + register exposure); the Phi's barely moves.
    DeviceModel k40 = makeDevice(DeviceId::K40);
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    Dgemm k40_small(k40, 128), k40_big(k40, 512);
    Dgemm phi_small(phi, 128), phi_big(phi, 512);
    double k40_growth =
        runFor(k40, k40_big).fitTotalAu(false) /
        runFor(k40, k40_small).fitTotalAu(false);
    double phi_growth =
        runFor(phi, phi_big).fitTotalAu(false) /
        runFor(phi, phi_small).fitTotalAu(false);
    EXPECT_GT(k40_growth, 1.8);
    EXPECT_LT(phi_growth, 1.5);
    EXPECT_GT(k40_growth, phi_growth);
}

TEST(IntegrationDgemm, K40CrashShareGrowsWithInput)
{
    // Paper V: "the larger the input, the higher the crashes and
    // hangs rate" (SDC:detectable falls from ~4x toward ~1.1x).
    DeviceModel k40 = makeDevice(DeviceId::K40);
    Dgemm small(k40, 128), big(k40, 512);
    double r_small = runFor(k40, small).sdcOverDetectable();
    double r_big = runFor(k40, big).sdcOverDetectable();
    EXPECT_GT(r_small, r_big);
    EXPECT_GT(r_small, 2.0);
    EXPECT_LT(r_big, 3.0);
}

TEST(IntegrationLavaMd, PhiHasMoreElementsSmallerErrors)
{
    // Paper V-B: the Phi shows more incorrect elements than the
    // K40 but with an overall lower difference to the expected
    // values.
    DeviceModel k40 = makeDevice(DeviceId::K40);
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    LavaMd on_k40(k40, 7, 42, 2, 4, 15);
    LavaMd on_phi(phi, 7, 42, 2, 4, 15);
    CampaignResult rk = runFor(k40, on_k40);
    CampaignResult rp = runFor(phi, on_phi);

    RunningStat k40_elems, phi_elems;
    for (const auto &run : rk.runs) {
        if (run.outcome == Outcome::Sdc)
            k40_elems.add(static_cast<double>(
                run.crit.numIncorrect));
    }
    for (const auto &run : rp.runs) {
        if (run.outcome == Outcome::Sdc)
            phi_elems.add(static_cast<double>(
                run.crit.numIncorrect));
    }
    EXPECT_GT(phi_elems.mean(), k40_elems.mean());
}

TEST(IntegrationLavaMd, PhiIsCubicDominated)
{
    // Paper Fig. 5b: most Phi LavaMD errors are cubic and square.
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    LavaMd lava(phi, 9, 42, 2, 4, 19);
    CampaignResult res = runFor(phi, lava);
    EXPECT_GT(patternShare(res, {Pattern::Cubic, Pattern::Square}),
              0.5);
}

TEST(IntegrationLavaMd, K40CubicShareDecreasesWithInput)
{
    // Paper V-B: K40 cubic+square falls from 55% to 42% as the
    // input grows (cache sharing decreases).
    DeviceModel k40 = makeDevice(DeviceId::K40);
    LavaMd small(k40, 7, 42, 2, 4, 15);
    LavaMd big(k40, 11, 42, 2, 4, 23);
    double share_small = patternShare(
        runFor(k40, small), {Pattern::Cubic, Pattern::Square});
    double share_big = patternShare(
        runFor(k40, big), {Pattern::Cubic, Pattern::Square});
    EXPECT_GT(share_small, share_big);
}

TEST(IntegrationLavaMd, PhiSdcRatioRisesWithInput)
{
    // Paper V: Phi LavaMD SDC:(crash+hang) grows from ~3x to ~12x
    // with input size.
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    LavaMd small(phi, 6, 42, 2, 4, 13);
    LavaMd big(phi, 11, 42, 2, 4, 23);
    double r_small = runFor(phi, small).sdcOverDetectable();
    double r_big = runFor(phi, big).sdcOverDetectable();
    EXPECT_GT(r_big, r_small);
    EXPECT_GT(r_big, 3.5);
}

TEST(IntegrationHotSpot, MostResilientCode)
{
    // Paper V-C: 80-95% of HotSpot faulty executions fall under
    // the 2% filter; mean relative errors stay below 25%; only
    // square/line patterns.
    DeviceModel k40 = makeDevice(DeviceId::K40);
    HotSpot hotspot(k40, 128, 192, 42);
    CampaignResult res = runFor(k40, hotspot);
    EXPECT_GE(res.filteredOutFraction(), 0.70);
    for (const auto &run : res.runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        EXPECT_LT(run.crit.meanRelErrPct, 25.0);
        EXPECT_TRUE(run.crit.pattern == Pattern::Square ||
                    run.crit.pattern == Pattern::Line ||
                    run.crit.pattern == Pattern::Single)
            << patternName(run.crit.pattern);
    }
    // Highest SDC:(crash+hang) ratio of the K40 codes (paper: 7x).
    EXPECT_GT(res.sdcOverDetectable(), 4.0);
}

TEST(IntegrationClamr, WaveErrorsNeverRecover)
{
    // Paper V-D: CLAMR errors spread as a wave; square patterns
    // amount to ~99%; corrupted-element counts are huge.
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    Clamr clamr(phi, 96, 256, 42);
    CampaignResult res = runFor(phi, clamr, 120);
    EXPECT_GT(patternShare(res, {Pattern::Square}), 0.9);
    RunningStat elems;
    for (const auto &run : res.runs) {
        if (run.outcome == Outcome::Sdc)
            elems.add(static_cast<double>(
                run.crit.numIncorrect));
    }
    // Large fractions of the 96x96 grid are corrupted.
    EXPECT_GT(elems.mean(), 500.0);
}

TEST(IntegrationCrossDevice, K40FitHigherThanPhi)
{
    // K40 (28 nm planar + hardware scheduling) shows higher
    // relative FIT than the Phi for the same code, as in Figs. 3,
    // 5, 7.
    DeviceModel k40 = makeDevice(DeviceId::K40);
    DeviceModel phi = makeDevice(DeviceId::XeonPhi);
    Dgemm on_k40(k40, 256), on_phi(phi, 256);
    EXPECT_GT(runFor(k40, on_k40).fitTotalAu(false),
              runFor(phi, on_phi).fitTotalAu(false));
}

TEST(IntegrationCrossDevice, FilterImprovesK40DgemmReliability)
{
    // Paper V-A: tolerating 2% discrepancy makes the K40 at least
    // ~60% "more reliable" than counting every mismatch.
    DeviceModel k40 = makeDevice(DeviceId::K40);
    Dgemm dgemm(k40, 256);
    CampaignResult res = runFor(k40, dgemm);
    EXPECT_LT(res.fitTotalAu(true), 0.65 * res.fitTotalAu(false));
}

} // anonymous namespace
} // namespace radcrit
