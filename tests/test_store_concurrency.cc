/**
 * @file
 * Concurrency tests for CampaignStore: threads racing save(),
 * load() and loadStream() on the same and on distinct keys — the
 * access pattern the sharded suite prepass drives (every worker
 * resolves its own campaigns against one shared store). The
 * contract under test: a concurrent lookup observes either a miss
 * or a fully valid entry (save stages to a per-thread tmp file and
 * renames atomically; loadStream validates before the sink sees a
 * byte), never a torn one, and the hit/miss tallies add up.
 *
 * Campaigns are simulated sequentially up front; the threads only
 * exercise store I/O.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/runner.hh"
#include "campaign/store.hh"
#include "campaign/stream.hh"
#include "kernels/dgemm.hh"
#include "logs/beamlog.hh"

namespace radcrit
{
namespace
{

class StoreConcurrencyTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info = ::testing::UnitTest::GetInstance()
                               ->current_test_info();
        dir_ = ::testing::TempDir() + "radcrit_storeconc_" +
            info->name();
        std::filesystem::remove_all(dir_);
    }

    void TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    CampaignRaw
    campaign(uint64_t seed, uint64_t runs = 30)
    {
        SimConfig cfg;
        cfg.faultyRuns = runs;
        cfg.seed = seed;
        return simulateCampaign(device_, dgemm_, cfg);
    }

    static std::string
    bytes(const CampaignRaw &raw)
    {
        std::stringstream ss;
        writeBeamLog(raw, ss);
        return ss.str();
    }

    static void
    joinAll(std::vector<std::thread> &threads)
    {
        for (std::thread &t : threads)
            t.join();
    }

    DeviceModel device_ = makeK40();
    Dgemm dgemm_{device_, 64, 42};
    std::string dir_;
};

TEST_F(StoreConcurrencyTest, ConcurrentHitsOnOneEntry)
{
    auto store = CampaignStore::open(dir_);
    ASSERT_TRUE(store);
    CampaignRaw raw = campaign(7);
    store->save(raw);
    const std::string ref = bytes(raw);
    const CampaignKey key = campaignKey(raw);

    constexpr int kThreads = 8;
    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            // Alternate the materialized and streamed hit paths.
            if (t % 2 == 0) {
                std::optional<CampaignRaw> back =
                    store->load(key);
                if (!back || bytes(*back) != ref)
                    ++bad;
            } else {
                CollectRawSink collect;
                if (!store->loadStream(key, raw.launch, collect,
                                       8))
                    ++bad;
                else if (bytes(collect.take()) != ref)
                    ++bad;
            }
        });
    joinAll(threads);
    EXPECT_EQ(bad.load(), 0);
    EXPECT_EQ(store->hits(), static_cast<uint64_t>(kThreads));
    EXPECT_EQ(store->misses(), 0u);
}

TEST_F(StoreConcurrencyTest, SaversAndLoadersNeverSeeTornEntry)
{
    auto store = CampaignStore::open(dir_);
    ASSERT_TRUE(store);
    CampaignRaw raw = campaign(3);
    const std::string ref = bytes(raw);
    const CampaignKey key = campaignKey(raw);

    constexpr int kSavers = 3;
    constexpr int kLoaders = 4;
    constexpr int kLookups = 6;
    std::atomic<int> bad{0};
    std::atomic<int> hits{0};
    std::atomic<int> misses{0};
    std::vector<std::thread> threads;
    for (int s = 0; s < kSavers; ++s)
        threads.emplace_back([&] {
            for (int i = 0; i < 3; ++i)
                store->save(raw);
        });
    for (int l = 0; l < kLoaders; ++l)
        threads.emplace_back([&] {
            for (int i = 0; i < kLookups; ++i) {
                std::optional<CampaignRaw> back =
                    store->load(key);
                if (!back) {
                    ++misses;
                    continue;
                }
                ++hits;
                // An observed entry is always the whole entry —
                // save() renames atomically into place.
                if (bytes(*back) != ref)
                    ++bad;
            }
        });
    joinAll(threads);
    EXPECT_EQ(bad.load(), 0);
    EXPECT_EQ(hits + misses, kLoaders * kLookups);
    EXPECT_EQ(store->hits(), static_cast<uint64_t>(hits.load()));
    EXPECT_EQ(store->misses(),
              static_cast<uint64_t>(misses.load()));
    // The entry survives every save; a fresh lookup hits.
    EXPECT_TRUE(store->load(key).has_value());
}

TEST_F(StoreConcurrencyTest, DistinctKeysRoundTripConcurrently)
{
    auto store = CampaignStore::open(dir_);
    ASSERT_TRUE(store);
    constexpr int kThreads = 6;
    std::vector<CampaignRaw> raws;
    std::vector<std::string> refs;
    for (int t = 0; t < kThreads; ++t) {
        raws.push_back(campaign(100 + t));
        refs.push_back(bytes(raws.back()));
    }

    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            store->save(raws[t]);
            std::optional<CampaignRaw> back =
                store->load(campaignKey(raws[t]));
            if (!back || bytes(*back) != refs[t])
                ++bad;
            CollectRawSink collect;
            if (!store->loadStream(campaignKey(raws[t]),
                                   raws[t].launch, collect, 8))
                ++bad;
            else if (bytes(collect.take()) != refs[t])
                ++bad;
        });
    joinAll(threads);
    EXPECT_EQ(bad.load(), 0);
    EXPECT_EQ(store->hits(),
              static_cast<uint64_t>(2 * kThreads));
    EXPECT_EQ(store->misses(), 0u);
}

TEST_F(StoreConcurrencyTest, GatedAsyncSavesOnDistinctKeys)
{
    auto store = CampaignStore::open(dir_);
    ASSERT_TRUE(store);
    constexpr int kThreads = 4;
    std::vector<CampaignRaw> raws;
    std::vector<std::string> refs;
    for (int t = 0; t < kThreads; ++t) {
        raws.push_back(campaign(200 + t));
        refs.push_back(bytes(raws.back()));
    }

    // Every save funnels through one shared 2-slot gate, like the
    // sharded prepass with --io-threads 2.
    IoThreadGate gate(2);
    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            auto sink = store->saveSink();
            AsyncSaveSink async(*sink, &gate, 2);
            CampaignRawSource source(raws[t], 8);
            pumpRaw(source, async);
        });
    joinAll(threads);
    for (int t = 0; t < kThreads; ++t) {
        std::optional<CampaignRaw> back =
            store->load(campaignKey(raws[t]));
        ASSERT_TRUE(back.has_value()) << "entry " << t;
        if (bytes(*back) != refs[t])
            ++bad;
    }
    EXPECT_EQ(bad.load(), 0);
    EXPECT_EQ(gate.slots(), 2u);
}

TEST_F(StoreConcurrencyTest, TwoPassStreamedHitsShareTheEntry)
{
    auto store = CampaignStore::open(dir_);
    ASSERT_TRUE(store);
    // Force the bounded-memory two-pass shape (validate pass, then
    // an AsyncRawSource-backed stream pass) even for a small entry.
    store->setSinglePassCap(0);
    CampaignRaw raw = campaign(5);
    store->save(raw);
    const std::string ref = bytes(raw);
    const CampaignKey key = campaignKey(raw);

    constexpr int kThreads = 6;
    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            CollectRawSink collect;
            if (!store->loadStream(key, raw.launch, collect, 4,
                                   /*ioThreads=*/2))
                ++bad;
            else if (bytes(collect.take()) != ref)
                ++bad;
        });
    joinAll(threads);
    EXPECT_EQ(bad.load(), 0);
    EXPECT_EQ(store->hits(), static_cast<uint64_t>(kThreads));
}

TEST_F(StoreConcurrencyTest, CorruptEntryQuarantinedOnceUnderRace)
{
    auto store = CampaignStore::open(dir_);
    ASSERT_TRUE(store);
    CampaignRaw raw = campaign(9);
    store->save(raw);
    const CampaignKey key = campaignKey(raw);

    // Truncate the entry mid-record so every lookup fails
    // validation.
    std::string path = store->pathFor(key);
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    in.close();
    std::string text = buf.str();
    std::ofstream out(path, std::ios::trunc);
    out << text.substr(0, text.size() / 2);
    out.close();

    constexpr int kThreads = 4;
    std::atomic<int> falseHits{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            CollectRawSink collect;
            if (store->loadStream(key, raw.launch, collect, 4))
                ++falseHits;
        });
    joinAll(threads);
    // Every racer sees a clean miss; whichever thread(s) reached
    // the bad bytes quarantined them, the rest missed on the
    // now-absent entry.
    EXPECT_EQ(falseHits.load(), 0);
    EXPECT_EQ(store->hits(), 0u);
    EXPECT_EQ(store->misses(), static_cast<uint64_t>(kThreads));
    EXPECT_FALSE(std::filesystem::exists(path));
    // And the key is usable again: a save round-trips.
    store->save(raw);
    EXPECT_TRUE(store->load(key).has_value());
}

} // anonymous namespace
} // namespace radcrit
