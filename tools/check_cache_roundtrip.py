#!/usr/bin/env python3
"""End-to-end check of the campaign store ("run once, analyze many").

Usage:
    check_cache_roundtrip.py <bench_binary> [extra bench args...]

Runs the given figure bench twice in two separate sandboxes that
share one campaign cache directory (passed via --cache), then
asserts from the bench JSON and CSV side-outputs that:

  * run 1 simulates every campaign (cache_misses == campaigns,
    cache_hits == 0) and populates the cache;
  * run 2 loads every campaign from the cache (cache_hits ==
    campaigns, cache_misses == 0);
  * run 2 executes no fault-injection kernels at all: every
    "kernel.*.inject.calls" counter in its stats snapshot is zero
    or absent (the golden computation at workload construction is
    allowed);
  * both runs produce byte-identical CSV artifacts — analysis of a
    cached campaign loses nothing.

Exits 0 on success, 1 with a diagnostic on any violation.
"""

import json
import os
import subprocess
import sys
import tempfile


def fail(msg):
    print("check_cache_roundtrip: FAIL: %s" % msg,
          file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def run_bench(binary, args, cwd):
    proc = subprocess.run([binary] + args, cwd=cwd,
                          stdout=subprocess.DEVNULL,
                          stderr=subprocess.PIPE)
    if proc.returncode != 0:
        fail("%s exited with %d in %s:\n%s"
             % (os.path.basename(binary), proc.returncode, cwd,
                proc.stderr.decode(errors="replace")))


def load_json(cwd, bench_name):
    path = os.path.join(cwd, "bench_out", bench_name + ".json")
    expect(os.path.exists(path),
           "missing bench JSON %s" % path)
    with open(path) as f:
        try:
            return json.load(f)
        except json.JSONDecodeError as e:
            fail("%s is not valid JSON: %s" % (path, e))


def csv_artifacts(cwd):
    """Map of CSV name -> bytes under <cwd>/bench_out."""
    out = {}
    bench_out = os.path.join(cwd, "bench_out")
    if os.path.isdir(bench_out):
        for name in sorted(os.listdir(bench_out)):
            if name.endswith(".csv"):
                with open(os.path.join(bench_out, name),
                          "rb") as f:
                    out[name] = f.read()
    return out


def inject_calls(doc):
    """Total kernel fault-injection calls in a stats snapshot."""
    total = 0
    for name, entry in doc.get("stats", {}).items():
        if (name.startswith("kernel.")
                and name.endswith(".inject.calls")):
            total += int(entry.get("value", 0))
    return total


def main(argv):
    argv = argv[1:]
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    binary = os.path.abspath(argv[0])
    extra = argv[1:] or ["--runs", "20"]
    bench_name = os.path.basename(binary)
    expect(os.path.exists(binary),
           "bench binary %s does not exist (build it first)"
           % binary)

    with tempfile.TemporaryDirectory() as sandbox:
        cache = os.path.join(sandbox, "cache")
        run1 = os.path.join(sandbox, "run1")
        run2 = os.path.join(sandbox, "run2")
        os.makedirs(run1)
        os.makedirs(run2)
        args = extra + ["--cache", cache]

        run_bench(binary, args, run1)
        doc1 = load_json(run1, bench_name)
        expect(doc1["campaigns"] > 0, "run 1 ran no campaigns")
        expect(doc1["cache_hits"] == 0,
               "run 1 hit a cache that should have been empty "
               "(%d hits)" % doc1["cache_hits"])
        expect(doc1["cache_misses"] == doc1["campaigns"],
               "run 1 misses (%d) != campaigns (%d)"
               % (doc1["cache_misses"], doc1["campaigns"]))
        expect(os.listdir(cache),
               "run 1 left the cache directory empty")

        run_bench(binary, args, run2)
        doc2 = load_json(run2, bench_name)
        expect(doc2["campaigns"] == doc1["campaigns"],
               "run 2 campaign count %d != run 1's %d"
               % (doc2["campaigns"], doc1["campaigns"]))
        expect(doc2["cache_hits"] == doc2["campaigns"],
               "run 2 hits (%d) != campaigns (%d): the store "
               "re-simulated cached work"
               % (doc2["cache_hits"], doc2["campaigns"]))
        expect(doc2["cache_misses"] == 0,
               "run 2 had %d cache misses, expected 0"
               % doc2["cache_misses"])
        expect(inject_calls(doc2) == 0,
               "run 2 executed %d fault-injection kernel calls; "
               "a fully cached run must execute none"
               % inject_calls(doc2))

        csv1 = csv_artifacts(run1)
        csv2 = csv_artifacts(run2)
        expect(csv1, "run 1 wrote no CSV artifacts to compare")
        expect(set(csv1) == set(csv2),
               "runs wrote different CSV sets: %s vs %s"
               % (sorted(csv1), sorted(csv2)))
        for name in sorted(csv1):
            expect(csv1[name] == csv2[name],
                   "%s differs between the simulated and the "
                   "cached run" % name)

    print("check_cache_roundtrip: OK: %s (%d campaigns cached, "
          "%d CSVs byte-identical, 0 kernel injections on the "
          "cached run)"
          % (bench_name, doc1["campaigns"], len(csv1)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
