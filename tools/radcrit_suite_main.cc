/**
 * @file
 * Entry point of the orchestrated experiment suite: discovers the
 * registered experiments, deduplicates their campaign demands, and
 * runs each distinct campaign exactly once on a shared worker
 * pool. All logic lives in src/suite/driver.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::suiteMain(argc, argv);
}
