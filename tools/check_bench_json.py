#!/usr/bin/env python3
"""Validate the machine-readable bench output emitted by writeBenchJson().

Usage:
    check_bench_json.py <bench_binary> [extra bench args...]
    check_bench_json.py --no-run <bench_binary>
    check_bench_json.py --suite <radcrit_suite.json>

With --suite the argument is an existing schema-8 suite document
(written by `radcrit_suite run`) and is validated in place: dedup
accounting (simulated + store_hits == distinct), totals that tally
with the per-experiment blocks, and the
pool/sharding/resilience/memory/stats snapshots.

Runs the bench binary (by default with a small --runs count so the
check stays fast), then parses bench_out/<bench_name>.json from the
current working directory and validates its shape. Any stale JSON
from a previous run is deleted first, so a bench that fails to
write fresh output fails the check instead of passing vacuously
against old data. With --no-run the bench is not executed and an
existing file is validated as-is.

Validated shape:

  * schema == 8 and bench matches the binary name
  * campaigns/runs/wall_ns are positive integers
  * jobs (worker threads per campaign) is a positive integer
  * cache_hits/cache_misses are non-negative integers and account
    for every campaign (hits + misses == campaigns; without
    --cache every campaign is a miss)
  * ns_per_op and runs_per_s are positive and mutually consistent
    (runs_per_s is wall-clock throughput, so it reflects the
    parallel speedup when jobs > 1)
  * timings is the perf-trajectory block: wall_ns/runs_per_s
    mirror the top level, pool_busy_ns/pool_idle_ns are
    non-negative, pool_utilization is in [0, 1], and phase_ns
    holds non-negative per-phase wall nanosecond totals whose
    "total" is positive whenever at least one campaign was
    actually simulated (cache_misses > 0)
  * sharding is the schema-8 scheduling block: whether the
    campaign-sharded suite prepass ran (always 0 for standalone
    benches, which have no prepass), its concurrency high-water
    mark and overlap win, and the async store-I/O telemetry
    (io_threads/io_batches/io_busy_ns/io_queue_peak — zeros
    without --io-threads, never absent)
  * resilience is the execution-resilience block: every counter
    (retries, resumes, quarantines, chaos faults) present as a
    non-negative integer — zero on a clean run, never absent
  * memory is the schema-8 process-memory block: peak_rss_bytes /
    current_rss_bytes from /proc/self/status (peak >= current
    whenever both are nonzero) plus the streaming pipeline's
    stream_batches / batch_runs accounting (zero on a
    materialized run, never absent)
  * stats is an object of instrument entries, each with a valid
    kind, and the campaign outcome counters sum to the run tally
    (infra-quarantined runs included)

Exits 0 on success, 1 with a diagnostic on any violation.
"""

import json
import os
import subprocess
import sys


def fail(msg):
    print("check_bench_json: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def validate_stats(stats):
    """Check every instrument entry in the registry snapshot."""
    expect(isinstance(stats, dict), "stats must be an object")
    expect(stats, "stats snapshot is empty")
    for name, entry in stats.items():
        expect(name, "stats entry with empty name")
        expect(isinstance(entry, dict),
               "stats entry %r is not an object" % name)
        kind = entry.get("kind")
        if kind in ("counter", "gauge"):
            expect(isinstance(entry.get("value"), (int, float)),
                   "%s: missing numeric value" % name)
        elif kind == "histogram":
            expect(isinstance(entry.get("count"), int),
                   "%s: missing integer count" % name)
            buckets = entry.get("buckets")
            expect(isinstance(buckets, dict),
                   "%s: missing buckets object" % name)
            expect(sum(buckets.values()) == entry["count"],
                   "%s: bucket counts do not sum to count" % name)
        else:
            fail("%s: unknown kind %r" % (name, kind))


PHASES = ("sample", "classify", "replay", "metrics", "total")

RESILIENCE_KEYS = ("retries", "resumed_runs", "watchdog_overdue",
                   "checkpoint_torn_records", "store_quarantined",
                   "chaos_throws", "chaos_stalls",
                   "chaos_corrupt_writes")


def validate_resilience(doc):
    """Check the schema-6 execution-resilience block.

    Every field is always present (zero on a clean run) so
    consumers can difference documents without existence checks.
    """
    rz = doc.get("resilience")
    expect(isinstance(rz, dict),
           "resilience must be an object, got %r" % rz)
    for key in RESILIENCE_KEYS:
        expect(isinstance(rz.get(key), int) and rz[key] >= 0,
               "resilience.%s must be a non-negative integer, "
               "got %r" % (key, rz.get(key)))
    extra = set(rz) - set(RESILIENCE_KEYS)
    expect(not extra,
           "resilience has unexpected keys %s" % sorted(extra))


SHARDING_KEYS = ("enabled", "concurrent_campaigns", "overlap_ns",
                 "prepass_wall_ns", "io_threads", "io_batches",
                 "io_busy_ns", "io_queue_peak")


def validate_sharding(doc):
    """Check the schema-8 scheduling/async-I/O block.

    Every field is always present (zero when the feature is off)
    so consumers can difference documents without existence
    checks.
    """
    sh = doc.get("sharding")
    expect(isinstance(sh, dict),
           "sharding must be an object, got %r" % sh)
    for key in SHARDING_KEYS:
        expect(isinstance(sh.get(key), int) and sh[key] >= 0,
               "sharding.%s must be a non-negative integer, "
               "got %r" % (key, sh.get(key)))
    extra = set(sh) - set(SHARDING_KEYS)
    expect(not extra,
           "sharding has unexpected keys %s" % sorted(extra))
    expect(sh["enabled"] in (0, 1),
           "sharding.enabled must be 0 or 1, got %r"
           % sh["enabled"])
    if not sh["enabled"]:
        expect(sh["concurrent_campaigns"] <= 1,
               "sharding disabled but concurrent_campaigns is %d"
               % sh["concurrent_campaigns"])
        expect(sh["overlap_ns"] == 0,
               "sharding disabled but overlap_ns is %d"
               % sh["overlap_ns"])
    if sh["io_threads"] == 0:
        expect(sh["io_batches"] == 0 and sh["io_busy_ns"] == 0
               and sh["io_queue_peak"] == 0,
               "io_threads is 0 but async store-I/O telemetry is "
               "nonzero (%r)" % sh)


MEMORY_KEYS = ("peak_rss_bytes", "current_rss_bytes",
               "stream_batches", "batch_runs")


def validate_memory(doc):
    """Check the schema-8 process-memory block.

    The RSS fields are zero only when /proc was unavailable; the
    stream fields are zero on a purely materialized (or all-cache-
    hit) run. All four are always present.
    """
    mem = doc.get("memory")
    expect(isinstance(mem, dict),
           "memory must be an object, got %r" % mem)
    for key in MEMORY_KEYS:
        expect(isinstance(mem.get(key), int) and mem[key] >= 0,
               "memory.%s must be a non-negative integer, got %r"
               % (key, mem.get(key)))
    extra = set(mem) - set(MEMORY_KEYS)
    expect(not extra,
           "memory has unexpected keys %s" % sorted(extra))
    if mem["peak_rss_bytes"] and mem["current_rss_bytes"]:
        expect(mem["peak_rss_bytes"] >= mem["current_rss_bytes"],
               "memory.peak_rss_bytes (%d) below "
               "current_rss_bytes (%d): VmHWM is a high-water "
               "mark" % (mem["peak_rss_bytes"],
                         mem["current_rss_bytes"]))


def validate_timings(doc):
    """Check the schema-8 perf-trajectory block."""
    timings = doc.get("timings")
    expect(isinstance(timings, dict),
           "timings must be an object, got %r" % timings)
    expect(timings.get("wall_ns") == doc["wall_ns"],
           "timings.wall_ns (%r) != top-level wall_ns (%r)"
           % (timings.get("wall_ns"), doc["wall_ns"]))
    expect(timings.get("runs_per_s") == doc["runs_per_s"],
           "timings.runs_per_s (%r) != top-level runs_per_s (%r)"
           % (timings.get("runs_per_s"), doc["runs_per_s"]))
    for key in ("pool_busy_ns", "pool_idle_ns"):
        expect(isinstance(timings.get(key), int)
               and timings[key] >= 0,
               "timings.%s must be a non-negative integer, got %r"
               % (key, timings.get(key)))
    util = timings.get("pool_utilization")
    expect(isinstance(util, (int, float)) and 0.0 <= util <= 1.0,
           "timings.pool_utilization must be in [0, 1], got %r"
           % util)
    phases = timings.get("phase_ns")
    expect(isinstance(phases, dict),
           "timings.phase_ns must be an object, got %r" % phases)
    for phase in PHASES:
        expect(isinstance(phases.get(phase), int)
               and phases[phase] >= 0,
               "timings.phase_ns.%s must be a non-negative "
               "integer, got %r" % (phase, phases.get(phase)))
    if doc["cache_misses"] > 0:
        expect(phases["total"] > 0,
               "campaigns were simulated (cache_misses=%d) but "
               "phase_ns.total is 0: the timings block carries no "
               "trajectory" % doc["cache_misses"])
        expect(timings["pool_busy_ns"] > 0,
               "campaigns were simulated but pool_busy_ns is 0")


SUITE_CAMPAIGN_KEYS = ("requested", "distinct", "simulated",
                       "store_hits", "memory_serves",
                       "unplanned_misses", "unplanned_hits",
                       "prepass_wall_ns")
SUITE_TOTAL_KEYS = ("campaigns", "runs", "wall_ns", "cache_hits",
                    "cache_misses")
SUITE_EXP_KEYS = ("campaigns", "runs", "wall_ns", "cache_hits",
                  "cache_misses")


def validate_suite_json(doc):
    """Check the schema-8 suite document written by radcrit_suite.

    Unlike the per-bench document, a suite run may legitimately
    involve zero campaigns (e.g. `run fig1_setup`), so the totals
    only need to be non-negative and internally consistent.
    """
    expect(doc.get("schema") == 8,
           "suite schema must be 8, got %r" % doc.get("schema"))
    expect(doc.get("suite") == "radcrit_suite",
           "suite must be 'radcrit_suite', got %r"
           % doc.get("suite"))
    for key in ("jobs", "experiments_run", "wall_ns"):
        expect(isinstance(doc.get(key), int) and doc[key] > 0,
               "%s must be a positive integer, got %r"
               % (key, doc.get(key)))

    camp = doc.get("campaigns")
    expect(isinstance(camp, dict),
           "campaigns must be an object, got %r" % camp)
    for key in SUITE_CAMPAIGN_KEYS:
        expect(isinstance(camp.get(key), int) and camp[key] >= 0,
               "campaigns.%s must be a non-negative integer, "
               "got %r" % (key, camp.get(key)))
    expect(camp["distinct"] <= camp["requested"],
           "distinct (%d) exceeds requested (%d)"
           % (camp["distinct"], camp["requested"]))
    expect(camp["simulated"] + camp["store_hits"]
           == camp["distinct"],
           "simulated (%d) + store_hits (%d) must account for "
           "every distinct planned campaign (%d)"
           % (camp["simulated"], camp["store_hits"],
              camp["distinct"]))

    totals = doc.get("totals")
    expect(isinstance(totals, dict),
           "totals must be an object, got %r" % totals)
    for key in SUITE_TOTAL_KEYS:
        expect(isinstance(totals.get(key), int)
               and totals[key] >= 0,
               "totals.%s must be a non-negative integer, got %r"
               % (key, totals.get(key)))
    expect(totals["cache_hits"] + totals["cache_misses"]
           == totals["campaigns"],
           "totals.cache_hits (%d) + cache_misses (%d) must "
           "account for every consumed campaign (%d)"
           % (totals["cache_hits"], totals["cache_misses"],
              totals["campaigns"]))
    if totals["runs"] > 0:
        for key in ("ns_per_op", "runs_per_s"):
            expect(isinstance(totals.get(key), (int, float))
                   and totals[key] > 0,
                   "totals.%s must be positive, got %r"
                   % (key, totals.get(key)))
        ratio = totals["ns_per_op"] * totals["runs_per_s"] / 1e9
        expect(abs(ratio - 1.0) < 1e-6,
               "totals.ns_per_op and runs_per_s are inconsistent "
               "(ratio %g)" % ratio)

    pool = doc.get("pool")
    expect(isinstance(pool, dict),
           "pool must be an object, got %r" % pool)
    expect(pool.get("jobs") == doc["jobs"],
           "pool.jobs (%r) != top-level jobs (%r)"
           % (pool.get("jobs"), doc.get("jobs")))
    expect(isinstance(pool.get("dispatches"), int)
           and pool["dispatches"] >= 0,
           "pool.dispatches must be a non-negative integer, "
           "got %r" % pool.get("dispatches"))

    exps = doc.get("experiments")
    expect(isinstance(exps, dict),
           "experiments must be an object, got %r" % exps)
    expect(len(exps) == doc["experiments_run"],
           "experiments_run (%d) != number of experiment blocks "
           "(%d)" % (doc["experiments_run"], len(exps)))
    sums = dict.fromkeys(SUITE_EXP_KEYS, 0)
    for name, block in exps.items():
        expect(isinstance(block, dict),
               "experiments.%s is not an object" % name)
        expect(isinstance(block.get("tag"), str),
               "experiments.%s.tag must be a string" % name)
        for key in SUITE_EXP_KEYS:
            expect(isinstance(block.get(key), int)
                   and block[key] >= 0,
                   "experiments.%s.%s must be a non-negative "
                   "integer, got %r" % (name, key, block.get(key)))
            sums[key] += block[key]
    for key in ("campaigns", "runs", "cache_hits",
                "cache_misses"):
        expect(sums[key] == totals[key],
               "per-experiment %s sum to %d but totals.%s is %d"
               % (key, sums[key], key, totals[key]))

    validate_sharding(doc)
    validate_resilience(doc)
    validate_memory(doc)
    validate_stats(doc.get("stats"))


def validate_suite_file(path):
    expect(os.path.exists(path),
           "missing suite output file %s" % path)
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail("%s is truncated or not valid JSON: %s"
                 % (path, e))
    validate_suite_json(doc)
    print("check_bench_json: OK: %s (suite schema 8, %d "
          "experiments, %d/%d distinct campaigns simulated)"
          % (path, doc["experiments_run"],
             doc["campaigns"]["simulated"],
             doc["campaigns"]["distinct"]))


def validate(path, bench_name):
    expect(os.path.exists(path),
           "missing output file %s (the bench did not write its "
           "JSON)" % path)
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail("%s is truncated or not valid JSON: %s"
                 % (path, e))

    expect(doc.get("schema") == 8,
           "schema must be 8, got %r" % doc.get("schema"))
    expect(doc.get("bench") == bench_name,
           "bench name %r != binary name %r"
           % (doc.get("bench"), bench_name))
    for key in ("campaigns", "jobs", "runs", "wall_ns"):
        expect(isinstance(doc.get(key), int) and doc[key] > 0,
               "%s must be a positive integer, got %r"
               % (key, doc.get(key)))
    for key in ("cache_hits", "cache_misses"):
        expect(isinstance(doc.get(key), int) and doc[key] >= 0,
               "%s must be a non-negative integer, got %r"
               % (key, doc.get(key)))
    expect(doc["cache_hits"] + doc["cache_misses"]
           == doc["campaigns"],
           "cache_hits (%d) + cache_misses (%d) must account for "
           "every campaign (%d)"
           % (doc["cache_hits"], doc["cache_misses"],
              doc["campaigns"]))
    for key in ("ns_per_op", "runs_per_s"):
        expect(isinstance(doc.get(key), (int, float))
               and doc[key] > 0,
               "%s must be positive, got %r" % (key, doc.get(key)))

    # ns_per_op and runs_per_s must describe the same measurement.
    ratio = doc["ns_per_op"] * doc["runs_per_s"] / 1e9
    expect(abs(ratio - 1.0) < 1e-6,
           "ns_per_op and runs_per_s are inconsistent (ratio %g)"
           % ratio)
    expect(abs(doc["ns_per_op"] - doc["wall_ns"] / doc["runs"])
           < max(1e-6 * doc["ns_per_op"], 1e-3),
           "ns_per_op does not match wall_ns / runs")

    validate_timings(doc)
    validate_sharding(doc)
    validate_resilience(doc)
    validate_memory(doc)
    validate_stats(doc.get("stats"))

    # The per-campaign outcome counters in the snapshot must tally
    # with the bench's total run count.
    outcome_sum = 0
    for name, entry in doc["stats"].items():
        if (name.startswith("campaign.")
                and name.rsplit(".", 1)[-1]
                in ("masked", "sdc", "crash", "hang",
                    "infra_error", "infra_timeout")):
            outcome_sum += int(entry["value"])
    expect(outcome_sum == doc["runs"],
           "outcome counters sum to %d, expected runs == %d"
           % (outcome_sum, doc["runs"]))

    print("check_bench_json: OK: %s (%d campaigns, %d runs, "
          "%d jobs, %.0f ns/op, %.1f runs/s)"
          % (path, doc["campaigns"], doc["runs"], doc["jobs"],
             doc["ns_per_op"], doc["runs_per_s"]))


def main(argv):
    argv = argv[1:]
    no_run = "--no-run" in argv
    argv = [a for a in argv if a != "--no-run"]
    if argv and argv[0] == "--suite":
        # Validate an existing schema-8 suite JSON (written by
        # `radcrit_suite run`) instead of running a bench binary.
        if len(argv) != 2:
            print(__doc__, file=sys.stderr)
            return 2
        validate_suite_file(argv[1])
        return 0
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    binary = argv[0]
    args = argv[1:] or ["--runs", "20"]
    bench_name = os.path.basename(binary)
    path = os.path.join("bench_out", bench_name + ".json")

    if not no_run:
        if not os.path.exists(binary):
            fail("bench binary %s does not exist (build it "
                 "first)" % binary)
        # Drop stale output so a bench that fails to write its
        # JSON is reported as missing, not validated against old
        # data.
        try:
            os.remove(path)
        except FileNotFoundError:
            pass
        try:
            proc = subprocess.run([binary] + args,
                                  stdout=subprocess.DEVNULL,
                                  stderr=subprocess.PIPE)
        except OSError as e:
            fail("cannot execute %s: %s" % (binary, e))
        if proc.returncode != 0:
            fail("%s exited with %d:\n%s"
                 % (bench_name, proc.returncode,
                    proc.stderr.decode(errors="replace")))

    validate(path, bench_name)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
