#!/usr/bin/env python3
"""Validate the machine-readable bench output emitted by writeBenchJson().

Usage:
    check_bench_json.py <bench_binary> [extra bench args...]
    check_bench_json.py --no-run <bench_binary>

Runs the bench binary (by default with a small --runs count so the
check stays fast), then parses bench_out/<bench_name>.json from the
current working directory and validates its shape. Any stale JSON
from a previous run is deleted first, so a bench that fails to
write fresh output fails the check instead of passing vacuously
against old data. With --no-run the bench is not executed and an
existing file is validated as-is.

Validated shape:

  * schema == 4 and bench matches the binary name
  * campaigns/runs/wall_ns are positive integers
  * jobs (worker threads per campaign) is a positive integer
  * cache_hits/cache_misses are non-negative integers and account
    for every campaign (hits + misses == campaigns; without
    --cache every campaign is a miss)
  * ns_per_op and runs_per_s are positive and mutually consistent
    (runs_per_s is wall-clock throughput, so it reflects the
    parallel speedup when jobs > 1)
  * timings is the perf-trajectory block: wall_ns/runs_per_s
    mirror the top level, pool_busy_ns/pool_idle_ns are
    non-negative, pool_utilization is in [0, 1], and phase_ns
    holds non-negative per-phase wall nanosecond totals whose
    "total" is positive whenever at least one campaign was
    actually simulated (cache_misses > 0)
  * stats is an object of instrument entries, each with a valid
    kind, and the campaign outcome counters sum to the run tally

Exits 0 on success, 1 with a diagnostic on any violation.
"""

import json
import os
import subprocess
import sys


def fail(msg):
    print("check_bench_json: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def validate_stats(stats):
    """Check every instrument entry in the registry snapshot."""
    expect(isinstance(stats, dict), "stats must be an object")
    expect(stats, "stats snapshot is empty")
    for name, entry in stats.items():
        expect(name, "stats entry with empty name")
        expect(isinstance(entry, dict),
               "stats entry %r is not an object" % name)
        kind = entry.get("kind")
        if kind in ("counter", "gauge"):
            expect(isinstance(entry.get("value"), (int, float)),
                   "%s: missing numeric value" % name)
        elif kind == "histogram":
            expect(isinstance(entry.get("count"), int),
                   "%s: missing integer count" % name)
            buckets = entry.get("buckets")
            expect(isinstance(buckets, dict),
                   "%s: missing buckets object" % name)
            expect(sum(buckets.values()) == entry["count"],
                   "%s: bucket counts do not sum to count" % name)
        else:
            fail("%s: unknown kind %r" % (name, kind))


PHASES = ("sample", "classify", "replay", "metrics", "total")


def validate_timings(doc):
    """Check the schema-4 perf-trajectory block."""
    timings = doc.get("timings")
    expect(isinstance(timings, dict),
           "timings must be an object, got %r" % timings)
    expect(timings.get("wall_ns") == doc["wall_ns"],
           "timings.wall_ns (%r) != top-level wall_ns (%r)"
           % (timings.get("wall_ns"), doc["wall_ns"]))
    expect(timings.get("runs_per_s") == doc["runs_per_s"],
           "timings.runs_per_s (%r) != top-level runs_per_s (%r)"
           % (timings.get("runs_per_s"), doc["runs_per_s"]))
    for key in ("pool_busy_ns", "pool_idle_ns"):
        expect(isinstance(timings.get(key), int)
               and timings[key] >= 0,
               "timings.%s must be a non-negative integer, got %r"
               % (key, timings.get(key)))
    util = timings.get("pool_utilization")
    expect(isinstance(util, (int, float)) and 0.0 <= util <= 1.0,
           "timings.pool_utilization must be in [0, 1], got %r"
           % util)
    phases = timings.get("phase_ns")
    expect(isinstance(phases, dict),
           "timings.phase_ns must be an object, got %r" % phases)
    for phase in PHASES:
        expect(isinstance(phases.get(phase), int)
               and phases[phase] >= 0,
               "timings.phase_ns.%s must be a non-negative "
               "integer, got %r" % (phase, phases.get(phase)))
    if doc["cache_misses"] > 0:
        expect(phases["total"] > 0,
               "campaigns were simulated (cache_misses=%d) but "
               "phase_ns.total is 0: the timings block carries no "
               "trajectory" % doc["cache_misses"])
        expect(timings["pool_busy_ns"] > 0,
               "campaigns were simulated but pool_busy_ns is 0")


def validate(path, bench_name):
    expect(os.path.exists(path),
           "missing output file %s (the bench did not write its "
           "JSON)" % path)
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail("%s is truncated or not valid JSON: %s"
                 % (path, e))

    expect(doc.get("schema") == 4,
           "schema must be 4, got %r" % doc.get("schema"))
    expect(doc.get("bench") == bench_name,
           "bench name %r != binary name %r"
           % (doc.get("bench"), bench_name))
    for key in ("campaigns", "jobs", "runs", "wall_ns"):
        expect(isinstance(doc.get(key), int) and doc[key] > 0,
               "%s must be a positive integer, got %r"
               % (key, doc.get(key)))
    for key in ("cache_hits", "cache_misses"):
        expect(isinstance(doc.get(key), int) and doc[key] >= 0,
               "%s must be a non-negative integer, got %r"
               % (key, doc.get(key)))
    expect(doc["cache_hits"] + doc["cache_misses"]
           == doc["campaigns"],
           "cache_hits (%d) + cache_misses (%d) must account for "
           "every campaign (%d)"
           % (doc["cache_hits"], doc["cache_misses"],
              doc["campaigns"]))
    for key in ("ns_per_op", "runs_per_s"):
        expect(isinstance(doc.get(key), (int, float))
               and doc[key] > 0,
               "%s must be positive, got %r" % (key, doc.get(key)))

    # ns_per_op and runs_per_s must describe the same measurement.
    ratio = doc["ns_per_op"] * doc["runs_per_s"] / 1e9
    expect(abs(ratio - 1.0) < 1e-6,
           "ns_per_op and runs_per_s are inconsistent (ratio %g)"
           % ratio)
    expect(abs(doc["ns_per_op"] - doc["wall_ns"] / doc["runs"])
           < max(1e-6 * doc["ns_per_op"], 1e-3),
           "ns_per_op does not match wall_ns / runs")

    validate_timings(doc)
    validate_stats(doc.get("stats"))

    # The per-campaign outcome counters in the snapshot must tally
    # with the bench's total run count.
    outcome_sum = 0
    for name, entry in doc["stats"].items():
        if (name.startswith("campaign.")
                and name.rsplit(".", 1)[-1]
                in ("masked", "sdc", "crash", "hang")):
            outcome_sum += int(entry["value"])
    expect(outcome_sum == doc["runs"],
           "outcome counters sum to %d, expected runs == %d"
           % (outcome_sum, doc["runs"]))

    print("check_bench_json: OK: %s (%d campaigns, %d runs, "
          "%d jobs, %.0f ns/op, %.1f runs/s)"
          % (path, doc["campaigns"], doc["runs"], doc["jobs"],
             doc["ns_per_op"], doc["runs_per_s"]))


def main(argv):
    argv = argv[1:]
    no_run = "--no-run" in argv
    argv = [a for a in argv if a != "--no-run"]
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    binary = argv[0]
    args = argv[1:] or ["--runs", "20"]
    bench_name = os.path.basename(binary)
    path = os.path.join("bench_out", bench_name + ".json")

    if not no_run:
        if not os.path.exists(binary):
            fail("bench binary %s does not exist (build it "
                 "first)" % binary)
        # Drop stale output so a bench that fails to write its
        # JSON is reported as missing, not validated against old
        # data.
        try:
            os.remove(path)
        except FileNotFoundError:
            pass
        try:
            proc = subprocess.run([binary] + args,
                                  stdout=subprocess.DEVNULL,
                                  stderr=subprocess.PIPE)
        except OSError as e:
            fail("cannot execute %s: %s" % (binary, e))
        if proc.returncode != 0:
            fail("%s exited with %d:\n%s"
                 % (bench_name, proc.returncode,
                    proc.stderr.decode(errors="replace")))

    validate(path, bench_name)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
