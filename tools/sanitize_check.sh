#!/usr/bin/env bash
# Build the tree under a sanitizer and run the concurrency- and
# chaos-labelled tests (worker pool + parallel campaign engine
# determinism, chaos injection, watchdog, checkpoint/resume).
#
# Usage: tools/sanitize_check.sh [thread|address] [build-dir]
#
# Defaults to ThreadSanitizer in build-tsan/. Pass "address" to vet
# the same tests under AddressSanitizer instead.
set -euo pipefail

SANITIZER="${1:-thread}"
case "$SANITIZER" in
    thread) DEFAULT_DIR=build-tsan ;;
    address) DEFAULT_DIR=build-asan ;;
    *)
        echo "sanitize_check: unknown sanitizer '$SANITIZER'" \
             "(thread or address)" >&2
        exit 2
        ;;
esac
BUILD_DIR="${2:-$DEFAULT_DIR}"
SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SOURCE_DIR" \
      -DRADCRIT_SANITIZE="$SANITIZER" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
# radcrit_cli is needed by the check_resume ctest (chaos label),
# which SIGKILLs and resumes a live campaign under the sanitizer.
cmake --build "$BUILD_DIR" -j "$(nproc)" \
      --target test_pool test_engine test_jobs_precedence \
      test_timeline test_chaos test_resume test_prop_chaos \
      radcrit_cli
ctest --test-dir "$BUILD_DIR" -L "concurrency|chaos" \
      --output-on-failure
