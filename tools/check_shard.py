#!/usr/bin/env python3
"""End-to-end check of the sharded suite prepass + async store I/O.

Usage:
    check_shard.py --suite <radcrit_suite> [--runs N] [--jobs N]
                   [--min-speedup X] [--reps N]

Runs the full 17-distinct-campaign suite plan (every experiment
except the google-benchmark throughput sweep, which declares no
campaigns and only adds wall clock) in a sandbox, and asserts the
two claims --shard-campaigns makes:

  1. Byte-identity: the sharded prepass produces per-experiment
     CSVs byte-identical to the sequential prepass at --jobs 1, 2
     and 8, and suite JSON documents whose campaigns / totals /
     experiments blocks match modulo wall-clock fields. A warm
     sharded run reading the cache a *sequential* run wrote must
     match too (the store entries are mode-independent).

  2. Speedup: on a warm cache — the steady-state shape of
     `run all`, and the configuration where the prepass wall is
     pure store I/O + analysis — the sharded prepass at --jobs 8
     with --io-threads 2 beats the sequential prepass wall by at
     least --min-speedup (default 1.5x). The assertion needs real
     parallelism, so it only arms when os.cpu_count() >= 4; on
     smaller machines the measurement still runs and is reported,
     with a printed skip notice. Cold prepass walls are reported
     for reference but not asserted: with one campaign holding
     ~85% of the simulation work, both shapes are bounded by the
     same critical path.

Exits 0 on success, 1 with a diagnostic on any violation.
"""

import json
import os
import subprocess
import sys
import tempfile

# Every experiment except kernel_throughput: the gbench sweep
# declares no campaigns, so it cannot affect prepass identity and
# would only add ~30 s of benchmark wall per suite invocation.
GLOBS = ["fig*", "table*", "sdc_crash_ratios", "abft_coverage",
         "detectors", "hardening", "avf_comparison",
         "mtbf_projection", "calibration", "ablation*"]


def fail(msg):
    print("check_shard: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def run_suite(suite, sandbox, tag, jobs, cache, sharded,
              io_threads=0, runs=8):
    """One suite invocation; returns its parsed JSON document."""
    out_dir = os.path.join(sandbox, "out_" + tag)
    json_path = os.path.join(sandbox, tag + ".json")
    cmd = [suite, "run"] + GLOBS + [
        "--runs=%d" % runs, "--jobs=%d" % jobs,
        "--cache=%s" % os.path.join(sandbox, cache),
        "--out=%s" % out_dir, "--json=%s" % json_path]
    if sharded:
        cmd.append("--shard-campaigns")
    if io_threads:
        cmd.append("--io-threads=%d" % io_threads)
    proc = subprocess.run(cmd, cwd=sandbox,
                          stdout=subprocess.DEVNULL,
                          stderr=subprocess.PIPE, text=True)
    expect(proc.returncode == 0,
           "suite run '%s' exited with %d:\n%s"
           % (tag, proc.returncode, proc.stderr))
    with open(json_path) as f:
        return json.load(f)


def read_csvs(sandbox, tag):
    out_dir = os.path.join(sandbox, "out_" + tag)
    csvs = {}
    for name in sorted(os.listdir(out_dir)):
        if name.endswith(".csv"):
            with open(os.path.join(out_dir, name), "rb") as f:
                csvs[name] = f.read()
    expect(csvs, "suite run '%s' wrote no CSVs" % tag)
    return csvs


def compare_csvs(ref, ref_tag, got, got_tag):
    expect(set(ref) == set(got),
           "CSV sets differ between %s and %s: %s"
           % (ref_tag, got_tag,
              sorted(set(ref) ^ set(got))))
    for name in sorted(ref):
        expect(ref[name] == got[name],
               "%s differs between %s (%d bytes) and %s (%d "
               "bytes) — the sharded prepass changed output bytes"
               % (name, ref_tag, len(ref[name]), got_tag,
                  len(got[name])))


def comparable(doc):
    """The suite-JSON blocks that must not depend on scheduling:
    everything except wall-clock (and wall-derived) fields."""
    return {
        "campaigns": {k: v for k, v in doc["campaigns"].items()
                      if k != "prepass_wall_ns"},
        "totals": {k: v for k, v in doc["totals"].items()
                   if k not in ("wall_ns", "ns_per_op",
                                "runs_per_s")},
        "experiments": {
            name: {k: v for k, v in block.items()
                   if k != "wall_ns"}
            for name, block in doc["experiments"].items()},
    }


def compare_json(ref, ref_tag, got, got_tag):
    a, b = comparable(ref), comparable(got)
    for block in ("campaigns", "totals", "experiments"):
        expect(a[block] == b[block],
               "suite JSON '%s' block differs between %s and %s:"
               "\n  %s\n  %s"
               % (block, ref_tag, got_tag, a[block], b[block]))


def prepass_ms(doc):
    return doc["sharding"]["prepass_wall_ns"] / 1e6


def main(argv):
    suite = None
    runs = 8
    jobs = 8
    min_speedup = 1.5
    reps = 2

    i = 1
    while i < len(argv):
        arg = argv[i]
        i += 1
        if arg == "--suite":
            suite = argv[i]
        elif arg == "--runs":
            runs = int(argv[i])
        elif arg == "--jobs":
            jobs = int(argv[i])
        elif arg == "--min-speedup":
            min_speedup = float(argv[i])
        elif arg == "--reps":
            reps = int(argv[i])
        else:
            print(__doc__, file=sys.stderr)
            return 2
        i += 1
    if suite is None:
        print(__doc__, file=sys.stderr)
        return 2
    suite = os.path.abspath(suite)
    expect(os.path.exists(suite),
           "radcrit_suite binary %s does not exist (build it "
           "first)" % suite)

    with tempfile.TemporaryDirectory() as sandbox:
        # --- Cold reference: the sequential prepass.
        seq = run_suite(suite, sandbox, "seq", jobs, "cache_seq",
                        sharded=False, runs=runs)
        seq_csvs = read_csvs(sandbox, "seq")
        expect(seq["campaigns"]["simulated"]
               == seq["campaigns"]["distinct"] > 0,
               "cold sequential run did not simulate every "
               "distinct campaign: %s" % seq["campaigns"])

        # --- Cold sharded runs at several worker counts, each on
        # a fresh cache so every campaign really simulates.
        cold_walls = {}
        for j in (1, 2, jobs):
            tag = "shard%d" % j
            doc = run_suite(suite, sandbox, tag, j,
                            "cache_" + tag, sharded=True,
                            io_threads=2, runs=runs)
            expect(doc["sharding"]["enabled"] == 1,
                   "%s: sharding.enabled is not 1" % tag)
            expect(doc["campaigns"]["simulated"]
                   == seq["campaigns"]["distinct"],
                   "%s simulated %d campaigns, reference "
                   "simulated %d"
                   % (tag, doc["campaigns"]["simulated"],
                      seq["campaigns"]["distinct"]))
            compare_csvs(seq_csvs, "seq", read_csvs(sandbox, tag),
                         tag)
            compare_json(seq, "seq", doc, tag)
            cold_walls[j] = prepass_ms(doc)

        # --- Cross-mode cache: a warm sharded run reading the
        # sequential run's cache must reproduce the same bytes.
        cross = run_suite(suite, sandbox, "cross", jobs,
                          "cache_seq", sharded=True, io_threads=2,
                          runs=runs)
        expect(cross["campaigns"]["store_hits"]
               == seq["campaigns"]["distinct"],
               "cross-mode warm run missed the cache: %s"
               % cross["campaigns"])
        compare_csvs(seq_csvs, "seq", read_csvs(sandbox, "cross"),
                     "cross")

        # --- Warm speedup: both modes replay the same warm cache;
        # best-of-N damps scheduler noise.
        seq_warm = min(
            prepass_ms(run_suite(suite, sandbox,
                                 "seq_warm%d" % r, jobs,
                                 "cache_seq", sharded=False,
                                 runs=runs))
            for r in range(reps))
        shard_warm = min(
            prepass_ms(run_suite(suite, sandbox,
                                 "shard_warm%d" % r, jobs,
                                 "cache_seq", sharded=True,
                                 io_threads=2, runs=runs))
            for r in range(reps))
        speedup = (seq_warm / shard_warm
                   if shard_warm > 0 else float("inf"))

        cold = ", ".join("jobs %d: %.0f ms" % (j, w)
                         for j, w in sorted(cold_walls.items()))
        print("check_shard: byte-identical at --jobs 1/2/%d; "
              "cold prepass [%s] vs sequential %.0f ms; warm "
              "prepass sharded %.0f ms vs sequential %.0f ms "
              "(%.2fx)"
              % (jobs, cold, prepass_ms(seq), shard_warm,
                 seq_warm, speedup))

        cpus = os.cpu_count() or 1
        if cpus >= 4:
            expect(speedup >= min_speedup,
                   "warm sharded prepass speedup %.2fx at "
                   "--jobs %d is below the %.2fx gate "
                   "(sequential %.0f ms, sharded %.0f ms)"
                   % (speedup, jobs, min_speedup, seq_warm,
                      shard_warm))
        else:
            print("check_shard: NOTE: %d CPU(s) < 4 — speedup "
                  "gate skipped (measured %.2fx, gate %.2fx)"
                  % (cpus, speedup, min_speedup))

    print("check_shard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
