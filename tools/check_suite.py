#!/usr/bin/env python3
"""Suite-vs-shim equivalence check for the radcrit experiment suite.

Runs ``radcrit_suite run all`` twice through a shared campaign
cache -- once at ``--jobs 1`` and once at ``--jobs 8`` -- plus every
standalone bench shim, then asserts:

 1. Artifact determinism: the CSV/PPM files the suite writes are
    byte-identical across jobs counts AND byte-identical to what the
    standalone shims produce.
 2. Dedup accounting: the first suite run's JSON proves every
    distinct campaign was simulated exactly once against an empty
    store (simulated == distinct, store_hits == 0), and the second
    run re-simulated nothing (simulated == 0, all planned campaigns
    served from the store, no unplanned misses).
 3. The suite JSON is valid schema 6 (delegated to
    check_bench_json.py's validator).

Exit code 0 on success; prints a diagnostic and exits 1 on the
first violation.
"""

import argparse
import filecmp
import json
import os
import shutil
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_bench_json import validate_suite_json  # noqa: E402

# The shim for this experiment forwards its raw argv to the google
# benchmark harness: it takes no --runs/--out options and writes no
# artifacts, so the shim phase skips it (the suite runs still
# exercise it through "run all").
RAW_CLI_EXPERIMENTS = {"kernel_throughput"}

ARTIFACT_EXTS = (".csv", ".ppm")


def fail(msg):
    print("check_suite: FAIL: %s" % msg)
    sys.exit(1)


def run(cmd, cwd, extra_env=None):
    env = dict(os.environ)
    env.pop("RADCRIT_CAMPAIGN_CACHE", None)
    env.pop("RADCRIT_BENCH_OUT", None)
    if extra_env:
        env.update(extra_env)
    proc = subprocess.run(cmd, cwd=cwd, env=env,
                          stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT)
    if proc.returncode != 0:
        sys.stdout.buffer.write(proc.stdout[-4000:])
        fail("command failed (%d): %s" %
             (proc.returncode, " ".join(cmd)))
    return proc.stdout.decode("utf-8", "replace")


def artifact_files(out_dir):
    found = {}
    for name in sorted(os.listdir(out_dir)):
        if name.endswith(ARTIFACT_EXTS):
            found[name] = os.path.join(out_dir, name)
    return found


def compare_artifacts(label_a, dir_a, label_b, dir_b):
    files_a = artifact_files(dir_a)
    files_b = artifact_files(dir_b)
    if set(files_a) != set(files_b):
        fail("artifact sets differ between %s and %s:\n"
             "  only in %s: %s\n  only in %s: %s" %
             (label_a, label_b,
              label_a, sorted(set(files_a) - set(files_b)),
              label_b, sorted(set(files_b) - set(files_a))))
    for name in sorted(files_a):
        if not filecmp.cmp(files_a[name], files_b[name],
                           shallow=False):
            fail("%s differs between %s and %s" %
                 (name, label_a, label_b))
    print("check_suite: %d artifacts byte-identical (%s vs %s)" %
          (len(files_a), label_a, label_b))
    return len(files_a)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--suite", required=True,
                    help="path to the radcrit_suite binary")
    ap.add_argument("--bench-dir", required=True,
                    help="directory holding the bench_* shims")
    ap.add_argument("--runs", type=int, default=12)
    args = ap.parse_args()

    suite = os.path.abspath(args.suite)
    bench_dir = os.path.abspath(args.bench_dir)
    sandbox = tempfile.mkdtemp(prefix="radcrit_check_suite_")
    try:
        check(args, suite, bench_dir, sandbox)
    finally:
        shutil.rmtree(sandbox, ignore_errors=True)
    print("check_suite: OK")


def check(args, suite, bench_dir, sandbox):
    cache = os.path.join(sandbox, "cache")
    suite1 = os.path.join(sandbox, "suite_jobs1")
    suite8 = os.path.join(sandbox, "suite_jobs8")
    shim_out = os.path.join(sandbox, "shim_out")
    shim_cache = os.path.join(sandbox, "shim_cache")

    catalog = json.loads(run([suite, "list", "--json"], sandbox))
    names = [e["name"] for e in catalog["experiments"]]
    if len(names) != len(set(names)):
        fail("duplicate experiment names in catalog")
    if len(names) < 20:
        fail("expected >= 20 registered experiments, got %d" %
             len(names))

    gbench = ["--gbench-min-time", "0.01"]

    # --- Suite run 1: cold cache, serial pool. -----------------
    run([suite, "run", "all", "--runs", str(args.runs),
         "--jobs", "1", "--cache", cache, "--out", suite1] +
        gbench, sandbox)
    doc1 = json.load(open(os.path.join(suite1,
                                       "radcrit_suite.json")))
    validate_suite_json(doc1)
    camp1 = doc1["campaigns"]
    if camp1["distinct"] <= 0:
        fail("suite run 1 planned no campaigns")
    if camp1["requested"] < camp1["distinct"]:
        fail("requested (%d) < distinct (%d): dedup key broken" %
             (camp1["requested"], camp1["distinct"]))
    if camp1["requested"] == camp1["distinct"]:
        fail("no campaign shared between experiments; dedup "
             "never exercised (requested == distinct == %d)" %
             camp1["requested"])
    if camp1["simulated"] != camp1["distinct"]:
        fail("cold run simulated %d of %d distinct campaigns" %
             (camp1["simulated"], camp1["distinct"]))
    if camp1["store_hits"] != 0:
        fail("cold run reported %d store hits" %
             camp1["store_hits"])
    if camp1["unplanned_misses"] <= 0:
        fail("expected ad-hoc (unplanned) campaigns from the "
             "ablation experiments, saw none")
    print("check_suite: cold run: %d requested -> %d distinct, "
          "each simulated once" %
          (camp1["requested"], camp1["distinct"]))

    # --- Suite run 2: warm cache, parallel pool. ---------------
    run([suite, "run", "all", "--runs", str(args.runs),
         "--jobs", "8", "--cache", cache, "--out", suite8] +
        gbench, sandbox)
    doc2 = json.load(open(os.path.join(suite8,
                                       "radcrit_suite.json")))
    validate_suite_json(doc2)
    camp2 = doc2["campaigns"]
    if camp2["distinct"] != camp1["distinct"]:
        fail("distinct campaign count changed between runs "
             "(%d vs %d)" % (camp1["distinct"],
                             camp2["distinct"]))
    if camp2["simulated"] != 0:
        fail("warm run re-simulated %d campaigns" %
             camp2["simulated"])
    if camp2["store_hits"] != camp2["distinct"]:
        fail("warm run served %d of %d campaigns from the store" %
             (camp2["store_hits"], camp2["distinct"]))
    if camp2["unplanned_misses"] != 0:
        fail("warm run re-simulated %d unplanned campaigns" %
             camp2["unplanned_misses"])
    print("check_suite: warm run: 0 simulated, %d store hits" %
          camp2["store_hits"])

    # --- Standalone shims. -------------------------------------
    os.makedirs(shim_out, exist_ok=True)
    for name in names:
        if name in RAW_CLI_EXPERIMENTS:
            continue
        shim = os.path.join(bench_dir, "bench_" + name)
        if not os.path.exists(shim):
            fail("missing shim binary %s" % shim)
        run([shim, "--runs", str(args.runs), "--out", shim_out,
             "--cache", shim_cache], sandbox)

    # Shims also drop per-bench schema-6 JSON files next to the
    # CSVs; the comparison below only looks at CSV/PPM artifacts.
    n = compare_artifacts("suite --jobs 1", suite1,
                          "suite --jobs 8", suite8)
    compare_artifacts("suite --jobs 1", suite1, "shims", shim_out)
    if n < 5:
        fail("only %d artifacts compared; expected the figure "
             "benches to produce more" % n)


if __name__ == "__main__":
    main()
