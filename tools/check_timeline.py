#!/usr/bin/env python3
"""Validate a flight-recorder timeline (Chrome trace-event JSON).

Usage:
    check_timeline.py <timeline.json> [--expect-runs N]
    check_timeline.py --cli <radcrit_cli> [--runs N] [--jobs N]

In the first form an existing timeline file is validated. In the
second form radcrit_cli is run in a temporary directory with
--timeline (and --expect-runs is implied by --runs), so the check
exercises the full producer path.

Validated shape (what Perfetto needs to load the file and what the
flight recorder promises):

  * top level is an object with displayTimeUnit and a traceEvents
    array
  * every event has a ph in {M, X, i}; pid == 1 throughout; tid is
    a non-negative integer
  * metadata (M) events carry process_name/thread_name args; every
    tid that emits spans/instants has a thread_name
  * complete (X) events have non-negative numeric ts and dur;
    instant (i) events have ts and scope "t"
  * within each tid, span start timestamps are monotonically
    non-decreasing (lanes are append-only, single-writer)
  * with --expect-runs N: there are exactly N spans with category
    "run", their "run" args cover 0..N-1 exactly once, and every
    one carries kernel and outcome args

Exits 0 on success, 1 with a diagnostic on any violation.
"""

import json
import os
import subprocess
import sys
import tempfile


def fail(msg):
    print("check_timeline: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate(path, expect_runs=None):
    expect(os.path.exists(path),
           "timeline file %s does not exist" % path)
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail("%s is truncated or not valid JSON: %s"
                 % (path, e))

    expect(isinstance(doc, dict),
           "top level must be an object, got %s"
           % type(doc).__name__)
    expect(doc.get("displayTimeUnit") == "ms",
           "displayTimeUnit must be 'ms', got %r"
           % doc.get("displayTimeUnit"))
    events = doc.get("traceEvents")
    expect(isinstance(events, list),
           "traceEvents must be an array, got %r" % type(events))
    expect(events, "traceEvents is empty")

    named_tids = set()
    last_ts = {}
    run_args = []
    for i, ev in enumerate(events):
        where = "traceEvents[%d]" % i
        expect(isinstance(ev, dict),
               "%s is not an object" % where)
        ph = ev.get("ph")
        expect(ph in ("M", "X", "i"),
               "%s: unexpected ph %r" % (where, ph))
        expect(ev.get("pid") == 1,
               "%s: pid must be 1, got %r" % (where, ev.get("pid")))
        tid = ev.get("tid")
        expect(isinstance(tid, int) and not isinstance(tid, bool)
               and tid >= 0,
               "%s: tid must be a non-negative integer, got %r"
               % (where, tid))

        if ph == "M":
            expect(ev.get("name")
                   in ("process_name", "thread_name"),
                   "%s: metadata name %r" % (where, ev.get("name")))
            args = ev.get("args")
            expect(isinstance(args, dict)
                   and isinstance(args.get("name"), str)
                   and args["name"],
                   "%s: metadata without args.name" % where)
            if ev["name"] == "thread_name":
                named_tids.add(tid)
            continue

        ts = ev.get("ts")
        expect(is_num(ts) and ts >= 0,
               "%s: ts must be a non-negative number, got %r"
               % (where, ts))
        # Lanes are single-writer and append-only, so each tid's
        # events must come out in non-decreasing start order.
        expect(ts >= last_ts.get(tid, 0.0),
               "%s: ts %r goes backwards within tid %d"
               % (where, ts, tid))
        last_ts[tid] = ts

        if ph == "X":
            dur = ev.get("dur")
            expect(is_num(dur) and dur >= 0,
                   "%s: complete event without non-negative dur, "
                   "got %r" % (where, dur))
        else:
            expect(ev.get("s") == "t",
                   "%s: instant event must have thread scope "
                   "('s': 't'), got %r" % (where, ev.get("s")))

        if ev.get("cat") == "run":
            args = ev.get("args")
            expect(isinstance(args, dict),
                   "%s: run span without args" % where)
            for key in ("run", "worker", "kernel", "outcome"):
                expect(key in args,
                       "%s: run span missing %r arg" % (where, key))
            expect(ph == "X",
                   "%s: run events must be complete spans" % where)
            run_args.append((args["run"], tid))

    used_tids = set(last_ts)
    unnamed = used_tids - named_tids
    expect(not unnamed,
           "tids %s emit events but have no thread_name metadata"
           % sorted(unnamed))

    if expect_runs is not None:
        expect(len(run_args) == expect_runs,
               "expected %d run spans, found %d"
               % (expect_runs, len(run_args)))
        seen = sorted(int(run) for run, _ in run_args)
        expect(seen == list(range(expect_runs)),
               "run args do not cover 0..%d exactly once"
               % (expect_runs - 1))

    print("check_timeline: OK: %s (%d events, %d lanes, %d run "
          "spans)" % (path, len(events), len(used_tids),
                      len(run_args)))


def run_cli(cli, runs, jobs):
    """Run radcrit_cli with --timeline in a sandbox and validate."""
    expect(os.path.exists(cli),
           "radcrit_cli binary %s does not exist (build it first)"
           % cli)
    with tempfile.TemporaryDirectory() as sandbox:
        path = os.path.join(sandbox, "timeline.json")
        proc = subprocess.run(
            [cli, "--runs", str(runs), "--jobs", str(jobs),
             "--timeline", path],
            cwd=sandbox, stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE)
        if proc.returncode != 0:
            fail("radcrit_cli exited with %d:\n%s"
                 % (proc.returncode,
                    proc.stderr.decode(errors="replace")))
        validate(path, expect_runs=runs)


def main(argv):
    argv = argv[1:]
    cli = None
    runs = 24
    jobs = 4
    expect_runs = None
    paths = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--cli":
            i += 1
            cli = argv[i]
        elif arg == "--runs":
            i += 1
            runs = int(argv[i])
        elif arg == "--jobs":
            i += 1
            jobs = int(argv[i])
        elif arg == "--expect-runs":
            i += 1
            expect_runs = int(argv[i])
        else:
            paths.append(arg)
        i += 1

    if cli is None and not paths:
        print(__doc__, file=sys.stderr)
        return 2
    if cli is not None:
        run_cli(cli, runs, jobs)
    for path in paths:
        validate(path, expect_runs=expect_runs)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
