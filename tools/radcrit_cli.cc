/**
 * @file
 * radcrit command-line front end: run any campaign from flags,
 * print the criticality summary, and optionally emit the beam log,
 * per-run CSV, scatter figure and locality breakdown — everything
 * a user needs without writing C++.
 *
 *   $ radcrit_cli --device=XeonPhi --workload=LavaMD \
 *       --size=15 --runs=400 --threshold=4 \
 *       --log=lavamd.beamlog --csv=lavamd.csv --figures
 *
 * The `analyze` subcommand is the other half of "run once, analyze
 * many": it loads a saved beam log (written by --log, or an entry
 * from a --cache directory) and re-renders the metrics under
 * arbitrary tolerance/locality parameters without touching a
 * kernel:
 *
 *   $ radcrit_cli analyze --log=lavamd.beamlog --filter-pct=10 \
 *       --csv=lavamd_10pct.csv --figures
 *
 * The flight recorder rides along on `run`: --timeline writes a
 * Chrome trace-event JSON of the campaign (one lane per worker,
 * one span per run; load it in Perfetto), and --report writes a
 * self-contained HTML campaign report. `radcrit_cli report
 * <beamlog>` renders the same report from a saved log:
 *
 *   $ radcrit_cli --runs=2000 --jobs=8 --timeline=t.json \
 *       --report=r.html
 *   $ radcrit_cli report lavamd.beamlog --out=lavamd.html
 *
 * `radcrit_cli list` prints the catalog of known devices,
 * workloads and registered experiments (same as `radcrit_suite
 * list`); `--json` makes it machine-readable.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "campaign/analysis.hh"
#include "campaign/paperconfigs.hh"
#include "campaign/report.hh"
#include "campaign/runner.hh"
#include "campaign/series.hh"
#include "campaign/store.hh"
#include "campaign/stream.hh"
#include "common/cli.hh"
#include "common/csv.hh"
#include "common/logging.hh"
#include "common/figure.hh"
#include "common/table.hh"
#include "exec/chaos.hh"
#include "exec/pool.hh"
#include "logs/beamlog.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"
#include "suite/driver.hh"

using namespace radcrit;

namespace
{

std::unique_ptr<Workload>
buildWorkload(const DeviceModel &device, const std::string &name,
              int64_t size)
{
    if (name == "DGEMM") {
        return makeDgemmWorkload(device,
                                 size > 0 ? size / 8 : 256);
    }
    if (name == "LavaMD") {
        int64_t paper = size > 0 ? size : 15;
        return makeLavamdWorkload(
            device, LavaMdSize{std::max<int64_t>(paper / 2, 2),
                               paper});
    }
    if (name == "HotSpot")
        return makeHotspotWorkload(device);
    if (name == "CLAMR")
        return makeClamrWorkload(device);
    fatal("unknown workload '%s' (DGEMM, LavaMD, HotSpot, CLAMR)",
          name.c_str());
}

/** Print the campaign summary table. */
void
printSummary(const CampaignResult &res)
{
    TextTable table("radcrit campaign: " + res.deviceName + " / " +
                    res.workloadName + " " + res.inputLabel);
    table.setHeader({"quantity", "value"});
    table.addRow({"faulty runs",
                  TextTable::num(
                      static_cast<uint64_t>(res.runs.size()))});
    table.addRow({"SDC", TextTable::num(
        res.count(Outcome::Sdc))});
    table.addRow({"crash", TextTable::num(
        res.count(Outcome::Crash))});
    table.addRow({"hang", TextTable::num(
        res.count(Outcome::Hang))});
    table.addRow({"masked", TextTable::num(
        res.count(Outcome::Masked))});
    uint64_t infra = res.count(Outcome::InfraError) +
        res.count(Outcome::InfraTimeout);
    if (infra > 0)
        table.addRow({"quarantined (infra)",
                      TextTable::num(infra)});
    double sdc_ratio = res.sdcOverDetectable();
    table.addRow({"SDC:(crash+hang)",
                  std::isnan(sdc_ratio)
                      ? "n/a"
                      : TextTable::num(sdc_ratio, 2)});
    table.addRow({"FIT all [a.u.]",
                  TextTable::num(res.fitTotalAu(false), 2)});
    table.addRow({"FIT >" +
                  TextTable::num(
                      res.config.analysis.filterThresholdPct, 1) +
                  "% [a.u.]",
                  TextTable::num(res.fitTotalAu(true), 2)});
    table.addRow({"executions under tolerance",
                  TextTable::num(100.0 *
                                 res.filteredOutFraction(), 1) +
                  "%"});
    table.render(std::cout);
}

/** Render the scatter + locality figures for one result. */
void
renderFigures(const CampaignResult &res, bool volumetric)
{
    ScatterPlot plot("mean relative error vs incorrect "
                     "elements",
                     "Number of Incorrect Elements",
                     "Average Relative Error (%)");
    plot.setYClamp(1000.0);
    plot.addSeries(scatterSeries(res));
    plot.render(std::cout);

    auto patterns = volumetric ? patterns3d() : patterns2d();
    std::vector<std::string> names;
    for (Pattern p : patterns)
        names.push_back(patternName(p));
    StackedBarChart chart("relative FIT by error pattern", names);
    for (auto &bar : localityBars(res, patterns).bars)
        chart.addBar(std::move(bar));
    chart.render(std::cout);
}

/** Write the per-run metrics CSV. */
void
writeRunCsv(const CampaignResult &res, const std::string &path)
{
    CsvWriter csv(path);
    csv.writeRow(runRowsHeader());
    for (const auto &row : runRows(res))
        csv.writeRow(row);
    std::printf("[csv] %s\n", path.c_str());
}

/** @return true when any SDC record in the campaign is 3-D. */
bool
rawIsVolumetric(const CampaignRaw &raw)
{
    for (const auto &run : raw.runs) {
        if (run.outcome == Outcome::Sdc)
            return run.record.dims == 3;
    }
    return false;
}

/**
 * Streaming counterpart of rawIsVolumetric(): watches batches flow
 * past and remembers whether the first SDC run is 3-D, so the
 * figure renderer can pick its pattern set without the campaign
 * ever being materialized.
 */
class VolumetricProbeSink : public RawSink
{
  public:
    void begin(const CampaignMeta &) override {}

    void consume(RunBatch &&batch) override
    {
        if (decided_)
            return;
        for (const auto &run : batch.runs) {
            if (run.outcome == Outcome::Sdc) {
                volumetric_ = run.record.dims == 3;
                decided_ = true;
                return;
            }
        }
    }

    void end(const StatsSnapshot &) override {}

    bool volumetric() const { return volumetric_; }

  private:
    bool decided_ = false;
    bool volumetric_ = false;
};

/** Shared default batch size for --stream when --batch-runs is 0. */
constexpr uint64_t kDefaultBatchRuns = 4096;

/**
 * `radcrit_cli analyze`: load a beam log, re-analyze under the
 * given tolerance/locality parameters, render.
 */
int
analyzeMain(int argc, char **argv)
{
    CliParser cli("radcrit_cli analyze");
    cli.addString("log", "",
                  "beam log to analyze (written by --log or a "
                  "campaign store entry; required)");
    cli.addDouble("filter-pct", 2.0,
                  "relative-error tolerance in percent");
    cli.addDouble("square-density", LocalityParams{}.squareDensity,
                  "locality classifier: min corrupted-element "
                  "density of a square pattern");
    cli.addDouble("cubic-density", LocalityParams{}.cubicDensity,
                  "locality classifier: min corrupted-element "
                  "density of a cubic pattern");
    cli.addDouble("fit-scale", AnalysisConfig{}.fitScaleAu,
                  "sensitive-area-to-FIT conversion (a.u.)");
    cli.addString("csv", "", "write per-run metrics CSV here");
    cli.addString("report", "",
                  "write a self-contained HTML campaign report "
                  "here");
    cli.addFlag("figures", "render scatter + locality figures");
    cli.addFlag("stream",
                "stream the beam log through the analyzer in "
                "batches instead of materializing it (bounded "
                "memory; output is byte-identical)");
    cli.addInt("batch-runs", 0,
               "records per streamed batch (0 = 4096 with "
               "--stream)");
    cli.addFlag("progress",
                "report analysis progress on stderr (records "
                "analyzed and records/s)");
    cli.parse(argc, argv);

    if (cli.getString("log").empty())
        fatal("analyze needs --log=<beamlog file>");
    if (cli.getInt("batch-runs") < 0)
        fatal("--batch-runs must be >= 0");

    AnalysisConfig acfg;
    acfg.filterThresholdPct = cli.getDouble("filter-pct");
    acfg.locality.squareDensity = cli.getDouble("square-density");
    acfg.locality.cubicDensity = cli.getDouble("cubic-density");
    acfg.fitScaleAu = cli.getDouble("fit-scale");

    CampaignResult res;
    bool volumetric = false;
    if (cli.getFlag("stream")) {
        uint64_t batch_runs =
            static_cast<uint64_t>(cli.getInt("batch-runs"));
        if (batch_runs == 0)
            batch_runs = kDefaultBatchRuns;
        std::ifstream in(cli.getString("log"));
        if (!in)
            fatal("cannot open beam log '%s'",
                  cli.getString("log").c_str());
        BeamLogSource source(in, batch_runs);
        uint64_t total = source.meta().sim.faultyRuns;
        uint64_t progress_every =
            cli.getFlag("progress")
                ? std::max<uint64_t>(total / 10, 1)
                : 0;
        AnalyzeSink analyze(acfg, progress_every);
        if (cli.getFlag("figures")) {
            VolumetricProbeSink probe;
            TeeRawSink tee({&probe, &analyze});
            pumpRaw(source, tee);
            volumetric = probe.volumetric();
        } else {
            pumpRaw(source, analyze);
        }
        res = analyze.take();
    } else {
        CampaignRaw raw = readBeamLogFile(cli.getString("log"));
        volumetric = rawIsVolumetric(raw);
        if (cli.getFlag("progress")) {
            // Same analyzer, driven through the progress-aware
            // sink; the result is byte-identical to
            // analyzeCampaign().
            CampaignRawSource source(raw, 0);
            res = analyzeCampaignStream(
                source, acfg,
                std::max<uint64_t>(raw.runs.size() / 10, 1));
        } else {
            res = analyzeCampaign(raw, acfg);
        }
    }
    printSummary(res);

    if (cli.getFlag("figures"))
        renderFigures(res, volumetric);

    if (!cli.getString("csv").empty())
        writeRunCsv(res, cli.getString("csv"));

    if (!cli.getString("report").empty()) {
        ProcMemSample mem = readProcMem();
        writeCampaignReportFile(res, cli.getString("report"),
                                nullptr, &mem);
        std::printf("[report] %s\n",
                    cli.getString("report").c_str());
    }
    return 0;
}

/**
 * `radcrit_cli report <beamlog>`: load a beam log, analyze it
 * (optionally under a non-default tolerance), and render the
 * self-contained HTML campaign report.
 */
int
reportMain(int argc, char **argv)
{
    CliParser cli("radcrit_cli report");
    cli.addString("log", "",
                  "beam log to report on (or pass it as the "
                  "positional argument)");
    cli.addString("out", "",
                  "report file to write (default: <beamlog>.html)");
    cli.addDouble("filter-pct", 2.0,
                  "relative-error tolerance in percent");
    cli.parse(argc, argv);

    std::string log = cli.getString("log");
    if (log.empty() && !cli.positional().empty())
        log = cli.positional().front();
    if (log.empty())
        fatal("report needs a beam log: radcrit_cli report "
              "<beamlog> [--out=<file>]");

    std::string out = cli.getString("out");
    if (out.empty())
        out = log + ".html";

    CampaignRaw raw = readBeamLogFile(log);
    AnalysisConfig acfg;
    acfg.filterThresholdPct = cli.getDouble("filter-pct");
    CampaignResult res = analyzeCampaign(raw, acfg);
    ProcMemSample mem = readProcMem();
    writeCampaignReportFile(res, out, nullptr, &mem);
    std::printf("[report] %s\n", out.c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "analyze") == 0)
        return analyzeMain(argc - 1, argv + 1);
    if (argc > 1 && std::strcmp(argv[1], "report") == 0)
        return reportMain(argc - 1, argv + 1);
    if (argc > 1 && std::strcmp(argv[1], "list") == 0) {
        CliParser list_cli("radcrit_cli list");
        list_cli.addFlag("json",
                         "machine-readable catalog (JSON)");
        list_cli.parse(argc - 1, argv + 1);
        printCatalog(std::cout, list_cli.getFlag("json"));
        return 0;
    }

    CliParser cli("radcrit_cli");
    cli.addString("device", "K40", "K40 or XeonPhi");
    cli.addString("workload", "DGEMM",
                  "DGEMM, LavaMD, HotSpot or CLAMR");
    cli.addInt("size", 0,
               "paper-equivalent input size (DGEMM side or "
               "LavaMD boxes; 0 = default)");
    cli.addInt("runs", 300, "faulty runs to simulate");
    cli.addInt("seed", 0, "campaign seed (0 = derived)");
    cli.addDouble("threshold", 2.0,
                  "relative-error tolerance in percent");
    cli.addInt("jobs",
               static_cast<int64_t>(WorkerPool::envJobs(1)),
               "worker threads (1 = serial, 0 = one per hardware "
               "thread; results are identical for every value; "
               "default from RADCRIT_JOBS)");
    const char *cache_env = std::getenv("RADCRIT_CAMPAIGN_CACHE");
    cli.addString("cache", cache_env ? cache_env : "",
                  "campaign store directory: load the raw campaign "
                  "from cache when present, save it after "
                  "simulating (default from "
                  "RADCRIT_CAMPAIGN_CACHE; empty = off)");
    cli.addString("log", "", "write the beam log here");
    cli.addString("csv", "", "write per-run metrics CSV here");
    cli.addString("trace", "",
                  "write a JSONL strike trace here (one record "
                  "per simulated run)");
    cli.addString("stats-out", "",
                  "write the campaign stats snapshot as JSON here");
    const char *timeline_env = std::getenv("RADCRIT_TIMELINE");
    cli.addString("timeline", timeline_env ? timeline_env : "",
                  "write a Chrome trace-event JSON timeline here "
                  "(one lane per worker, one span per run; open in "
                  "Perfetto; default from RADCRIT_TIMELINE)");
    cli.addString("report", "",
                  "write a self-contained HTML campaign report "
                  "here");
    cli.addFlag("progress", "report campaign progress on stderr");
    cli.addFlag("figures", "render scatter + locality figures");
    cli.addFlag("stream",
                "run the bounded-memory streaming pipeline: "
                "simulate, persist and analyze overlap batch by "
                "batch and the raw campaign is never held in "
                "memory; every output is byte-identical to the "
                "materialized default");
    cli.addInt("batch-runs", 0,
               "runs per streamed batch handed from the simulator "
               "to the analyzer (0 = 4096 with --stream)");
    cli.addInt("io-threads", 0,
               "background store-I/O operations allowed at once: "
               "cache entry parse/serialize rides an I/O thread "
               "behind a bounded queue instead of the simulate "
               "path (0 = inline; results are byte-identical)");
    cli.addString("checkpoint", "",
                  "append completed runs to this shard file as "
                  "they finish, so a killed campaign can be "
                  "resumed with --resume");
    cli.addFlag("resume",
                "replay complete runs from --checkpoint instead "
                "of re-simulating them; the finished campaign is "
                "bit-identical to an uninterrupted one");
    cli.addInt("max-attempts", 3,
               "attempts per run before it is quarantined as an "
               "infra outcome (1 = fail fast)");
    cli.addInt("deadline-ms", 0,
               "soft per-run deadline in milliseconds: overruns "
               "are retried and the watchdog warns live about "
               "stuck runs (0 = off)");
    const char *chaos_env = std::getenv("RADCRIT_CHAOS");
    cli.addString("chaos", chaos_env ? chaos_env : "",
                  "deterministic harness-fault injection spec, "
                  "e.g. seed=42,runs=300,throws=3,stalls=1,"
                  "corrupts=1,attempts=2,stall-ms=50 (default "
                  "from RADCRIT_CHAOS; empty = off)");
    cli.parse(argc, argv);

    std::string device_name = cli.getString("device");
    if (device_name != "K40" && device_name != "XeonPhi")
        fatal("unknown device '%s' (K40 or XeonPhi)",
              device_name.c_str());
    DeviceModel device = makeDevice(
        device_name == "K40" ? DeviceId::K40
                             : DeviceId::XeonPhi);
    auto workload = buildWorkload(device,
                                  cli.getString("workload"),
                                  cli.getInt("size"));

    CampaignConfig cfg = defaultCampaign(
        static_cast<uint64_t>(cli.getInt("runs")), device.name,
        workload->name(), workload->inputLabel());
    if (cli.getInt("seed") != 0)
        cfg.sim.seed = static_cast<uint64_t>(cli.getInt("seed"));
    cfg.analysis.filterThresholdPct = cli.getDouble("threshold");
    if (cli.getInt("jobs") < 0)
        fatal("--jobs must be >= 0");
    cfg.sim.jobs = static_cast<unsigned>(cli.getInt("jobs"));
    if (cli.getFlag("progress")) {
        cfg.sim.progressEvery =
            std::max<uint64_t>(cfg.sim.faultyRuns / 10, 1);
    }
    if (cli.getInt("max-attempts") < 1)
        fatal("--max-attempts must be >= 1");
    cfg.sim.resilience.maxAttempts =
        static_cast<unsigned>(cli.getInt("max-attempts"));
    if (cli.getInt("deadline-ms") < 0)
        fatal("--deadline-ms must be >= 0");
    cfg.sim.resilience.softDeadlineNs = static_cast<uint64_t>(
        cli.getInt("deadline-ms")) * 1'000'000;
    cfg.sim.resilience.checkpointPath =
        cli.getString("checkpoint");
    cfg.sim.resilience.resume = cli.getFlag("resume");
    if (cfg.sim.resilience.resume &&
        cfg.sim.resilience.checkpointPath.empty())
        fatal("--resume needs --checkpoint=<shard file>");

    std::unique_ptr<ChaosEngine> chaos_engine;
    if (!cli.getString("chaos").empty()) {
        auto params = parseChaosSpec(cli.getString("chaos"));
        if (params) {
            chaos_engine = std::make_unique<ChaosEngine>(
                makeChaosPlan(*params));
            inform("%s", chaos_engine->plan().describe().c_str());
            setChaos(chaos_engine.get());
        }
    }

    std::unique_ptr<CampaignStore> store;
    if (!cli.getString("cache").empty())
        store = CampaignStore::open(cli.getString("cache"));

    std::unique_ptr<JsonlTraceSink> trace;
    if (!cli.getString("trace").empty()) {
        trace = std::make_unique<JsonlTraceSink>(
            cli.getString("trace"));
        setTraceSink(trace.get());
    }

    // The flight recorder also feeds the Workers section of the
    // HTML report, so arm it for --report too.
    std::unique_ptr<Timeline> tl;
    if (!cli.getString("timeline").empty() ||
        !cli.getString("report").empty()) {
        tl = std::make_unique<Timeline>();
        setTimeline(tl.get());
    }

    bool stream = cli.getFlag("stream");
    if (cli.getInt("batch-runs") < 0)
        fatal("--batch-runs must be >= 0");
    cfg.sim.batchRuns =
        static_cast<uint64_t>(cli.getInt("batch-runs"));
    if (stream && cfg.sim.batchRuns == 0)
        cfg.sim.batchRuns = kDefaultBatchRuns;
    if (cli.getInt("io-threads") < 0)
        fatal("--io-threads must be >= 0");
    cfg.sim.ioThreads =
        static_cast<unsigned>(cli.getInt("io-threads"));
    IoThreadGate::global().configure(cfg.sim.ioThreads);

    CampaignRaw raw;
    CampaignResult res;
    if (stream) {
        // The streaming pipeline: analysis (and the beam-log
        // writer, when asked for) ride directly behind the
        // simulator, batch by batch; the raw campaign never
        // materializes.
        std::unique_ptr<std::ofstream> log_out;
        std::unique_ptr<BeamLogSink> log_sink;
        AnalyzeSink analyze(cfg.analysis);
        std::vector<RawSink *> sinks;
        if (!cli.getString("log").empty()) {
            log_out = std::make_unique<std::ofstream>(
                cli.getString("log"));
            if (!*log_out)
                fatal("cannot open beam log '%s' for writing",
                      cli.getString("log").c_str());
            log_sink = std::make_unique<BeamLogSink>(*log_out);
            sinks.push_back(log_sink.get());
        }
        sinks.push_back(&analyze);
        TeeRawSink tee(sinks);
        RawSink &sink = sinks.size() > 1
                            ? static_cast<RawSink &>(tee)
                            : static_cast<RawSink &>(analyze);
        simulateOrLoadStream(device, *workload, cfg.sim,
                             store.get(), sink);
        if (log_out) {
            log_out->flush();
            if (!*log_out)
                fatal("write error on beam log '%s'",
                      cli.getString("log").c_str());
            log_out->close();
        }
        res = analyze.take();
    } else {
        raw = simulateOrLoad(device, *workload, cfg.sim,
                             store.get());
        res = analyzeCampaign(raw, cfg.analysis);
    }

    if (chaos_engine)
        setChaos(nullptr);
    if (tl)
        setTimeline(nullptr);

    if (trace) {
        setTraceSink(nullptr);
        trace->flush();
        std::printf("[trace] %s\n", trace->path().c_str());
    }

    if (!cli.getString("timeline").empty()) {
        tl->writeJsonFile(cli.getString("timeline"));
        std::printf("[timeline] %s\n",
                    cli.getString("timeline").c_str());
    }

    if (!cli.getString("report").empty()) {
        ProcMemSample mem = readProcMem();
        writeCampaignReportFile(res, cli.getString("report"),
                                tl.get(), &mem);
        std::printf("[report] %s\n",
                    cli.getString("report").c_str());
    }

    if (!cli.getString("stats-out").empty()) {
        std::ofstream stats_out(cli.getString("stats-out"));
        if (!stats_out)
            fatal("cannot open stats file '%s'",
                  cli.getString("stats-out").c_str());
        res.stats.writeJson(stats_out);
        stats_out << "\n";
        std::printf("[stats] %s\n",
                    cli.getString("stats-out").c_str());
    }

    printSummary(res);

    if (cli.getFlag("figures"))
        renderFigures(res, workload->emptyRecord().dims == 3);

    if (!cli.getString("csv").empty())
        writeRunCsv(res, cli.getString("csv"));

    if (!cli.getString("log").empty()) {
        // The streamed path already wrote it batch by batch.
        if (!stream)
            writeBeamLogFile(raw, cli.getString("log"));
        std::printf("[beamlog] %s\n",
                    cli.getString("log").c_str());
    }
    return 0;
}
