#!/usr/bin/env python3
"""End-to-end checkpoint/resume check: kill a campaign, resume it.

Usage:
    check_resume.py --cli <radcrit_cli> [--runs N] [--jobs N]

The check stages the exact failure checkpointing exists for:

  1. baseline: run radcrit_cli to completion in a sandbox, keeping
     its per-run CSV and beam log
  2. victim: run the same campaign with --checkpoint and a chaos
     plan whose stall faults hold a couple of runs open (stalls are
     bit-identical — they only cost wall clock), poll the shard
     until some runs have checkpointed but not all, then SIGKILL
     the process mid-campaign
  3. resume: run again with --resume against the surviving shard

and then asserts that the resumed campaign is indistinguishable
from the uninterrupted one: the CSV and beam log are byte-identical
to the baseline's, and the stats snapshot proves the resume
actually replayed work (resilience.resumed_runs > 0) rather than
re-simulating everything.

If the victim finishes before the kill lands (fast machine), the
stall duration is escalated and the victim is restarted.

Exits 0 on success, 1 with a diagnostic on any violation.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time


def fail(msg):
    print("check_resume: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def read_bytes(path):
    with open(path, "rb") as f:
        return f.read()


def count_records(path):
    """Completed run records in a shard (one '#END' line each)."""
    if not os.path.exists(path):
        return 0
    try:
        with open(path, "rb") as f:
            return f.read().count(b"\n#END ")
    except OSError:
        return 0


def run_to_completion(cli, sandbox, runs, jobs, extra):
    proc = subprocess.run(
        [cli, "--runs", str(runs), "--jobs", str(jobs)] + extra,
        cwd=sandbox, stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE)
    if proc.returncode != 0:
        fail("radcrit_cli exited with %d:\n%s"
             % (proc.returncode,
                proc.stderr.decode(errors="replace")))


def kill_mid_campaign(cli, sandbox, runs, jobs, shard, stall_ms):
    """Start a checkpointing campaign and SIGKILL it mid-flight.

    Returns the number of checkpointed runs if the kill landed
    while the campaign was incomplete, or None if the victim
    finished first (caller escalates the stall and retries).
    """
    if os.path.exists(shard):
        os.unlink(shard)
    chaos = ("seed=1,runs=%d,stalls=2,attempts=1,stall-ms=%d"
             % (runs, stall_ms))
    victim = subprocess.Popen(
        [cli, "--runs", str(runs), "--jobs", str(jobs),
         "--checkpoint", shard, "--chaos", chaos],
        cwd=sandbox, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                return None  # finished before the kill window
            done = count_records(shard)
            if 0 < done < runs:
                victim.send_signal(signal.SIGKILL)
                victim.wait()
                return done
            time.sleep(0.002)
        fail("victim neither checkpointed a run nor exited "
             "within 60s")
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait()


def main(argv):
    argv = argv[1:]
    cli = None
    runs = 48
    jobs = 4
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--cli":
            i += 1
            cli = argv[i]
        elif arg == "--runs":
            i += 1
            runs = int(argv[i])
        elif arg == "--jobs":
            i += 1
            jobs = int(argv[i])
        else:
            fail("unknown argument %r" % arg)
        i += 1

    if cli is None:
        print(__doc__, file=sys.stderr)
        return 2
    cli = os.path.abspath(cli)
    expect(os.path.exists(cli),
           "radcrit_cli binary %s does not exist (build it first)"
           % cli)

    with tempfile.TemporaryDirectory() as sandbox:
        base_csv = os.path.join(sandbox, "base.csv")
        base_log = os.path.join(sandbox, "base.beamlog")
        run_to_completion(cli, sandbox, runs, jobs,
                          ["--csv", base_csv, "--log", base_log])

        shard = os.path.join(sandbox, "campaign.shard")
        checkpointed = None
        for stall_ms in (400, 1600, 6400):
            checkpointed = kill_mid_campaign(
                cli, sandbox, runs, jobs, shard, stall_ms)
            if checkpointed is not None:
                break
            print("check_resume: victim finished before the kill "
                  "(stall-ms=%d), escalating" % stall_ms)
        expect(checkpointed is not None,
               "could not SIGKILL the campaign mid-flight even "
               "with 6.4s stalls")
        print("check_resume: killed victim with %d/%d runs "
              "checkpointed" % (checkpointed, runs))

        res_csv = os.path.join(sandbox, "resumed.csv")
        res_log = os.path.join(sandbox, "resumed.beamlog")
        stats = os.path.join(sandbox, "resumed_stats.json")
        run_to_completion(
            cli, sandbox, runs, jobs,
            ["--checkpoint", shard, "--resume",
             "--csv", res_csv, "--log", res_log,
             "--stats-out", stats])

        expect(read_bytes(res_csv) == read_bytes(base_csv),
               "resumed CSV differs from the uninterrupted run's")
        expect(read_bytes(res_log) == read_bytes(base_log),
               "resumed beam log differs from the uninterrupted "
               "run's")

        with open(stats) as f:
            doc = json.load(f)
        entry = doc.get("resilience.resumed_runs")
        expect(isinstance(entry, dict),
               "stats snapshot has no resilience.resumed_runs "
               "entry — the resume silently re-simulated")
        resumed = entry.get("value")
        expect(isinstance(resumed, (int, float)) and
               0 < resumed <= runs,
               "resilience.resumed_runs is %r, expected a count "
               "in (0, %d]" % (resumed, runs))

        # A second resume replays the now-complete shard in full.
        run_to_completion(
            cli, sandbox, runs, jobs,
            ["--checkpoint", shard, "--resume",
             "--csv", res_csv, "--stats-out", stats])
        expect(read_bytes(res_csv) == read_bytes(base_csv),
               "second resume's CSV differs from the baseline's")
        with open(stats) as f:
            doc = json.load(f)
        expect(doc.get("resilience.resumed_runs",
                       {}).get("value") == runs,
               "second resume should replay all %d runs from the "
               "completed shard" % runs)

        print("check_resume: OK: resumed %d checkpointed runs, "
              "byte-identical CSV and beam log" % int(resumed))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
