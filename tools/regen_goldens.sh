#!/bin/sh
# Re-bless the golden-snapshot CSVs in tests/goldens/ after an
# intentional change to campaign output. Runs every ctest with the
# "golden" label under RADCRIT_REGEN_GOLDENS=1, which makes
# check::compareGolden() rewrite each golden file from the freshly
# computed rows instead of comparing. Review the resulting diff
# before committing: every changed cell is a deliberate behavior
# change you are signing off on.
#
# Usage: tools/regen_goldens.sh [build-dir]   (default: build)

set -eu

build_dir="${1:-build}"

if [ ! -d "$build_dir" ]; then
    echo "regen_goldens: build directory '$build_dir' not found" \
         "(run cmake -B $build_dir -S . first)" >&2
    exit 1
fi

RADCRIT_REGEN_GOLDENS=1 ctest --test-dir "$build_dir" \
    -L golden --output-on-failure
echo "regen_goldens: done; review 'git diff tests/goldens/'"
