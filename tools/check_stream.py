#!/usr/bin/env python3
"""End-to-end check of the bounded-memory streaming pipeline.

Usage:
    check_stream.py --cli <radcrit_cli> [--runs N] [--size N]
                    [--jobs N] [--batch-runs N] [--budget-mib N]

Runs one large DGEMM campaign twice in a sandbox sharing a campaign
cache:

  1. materialized (the default path): simulates the campaign, holds
     the whole CampaignRaw in memory, saves it to the cache and
     writes the per-run CSV;
  2. streamed (--stream --batch-runs N): loads the same campaign
     from the cache batch by batch and analyzes it without ever
     materializing the raw campaign.

and asserts the two claims the streaming refactor makes:

  * the per-run CSVs are byte-identical — streaming changes peak
    memory, never a single output byte;
  * the streamed run's peak RSS (VmHWM, via ru_maxrss of the child)
    stays under a fixed budget that the materialized run exceeds —
    the budget separates the two paths, so a regression that quietly
    re-materializes the campaign under --stream trips the check.

Then a second, smaller campaign (under CampaignStore's single-pass
validate cap, so the store streams it in one parse) checks the
warm-hit cost: a streamed store hit must cost no more than
--warm-factor (default 1.5x) the wall of a materialized (raw,
single-parse) load of the same entry. Before single-pass validate,
the streamed hit parsed the entry twice (validate, then stream)
and cost ~3x; this gate keeps the double-parse from coming back.

Peak RSS is measured per child by wrapping each radcrit_cli
invocation in its own short-lived Python process that reports
getrusage(RUSAGE_CHILDREN).ru_maxrss (KiB on Linux, the only
platform with the /proc-based gauges this pipeline targets).

Exits 0 on success, 1 with a diagnostic on any violation.
"""

import os
import subprocess
import sys
import tempfile
import time


def fail(msg):
    print("check_stream: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


# Runs in a child interpreter: execute one radcrit_cli invocation
# and report its exit code and peak RSS on the last stdout line.
MEASURE = (
    "import resource, subprocess, sys\n"
    "p = subprocess.run(sys.argv[1:], stdout=subprocess.DEVNULL)\n"
    "r = resource.getrusage(resource.RUSAGE_CHILDREN)\n"
    "print(p.returncode, r.ru_maxrss)\n"
)


def run_measured(args, cwd):
    """Run one CLI invocation; return its peak RSS in KiB."""
    proc = subprocess.run([sys.executable, "-c", MEASURE] + args,
                          cwd=cwd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True)
    expect(proc.returncode == 0,
           "measurement wrapper for %s exited with %d:\n%s"
           % (" ".join(args), proc.returncode, proc.stderr))
    fields = proc.stdout.split()
    expect(len(fields) == 2,
           "unexpected wrapper output: %r" % proc.stdout)
    returncode, max_rss_kib = int(fields[0]), int(fields[1])
    expect(returncode == 0,
           "radcrit_cli exited with %d:\n%s"
           % (returncode, proc.stderr))
    return max_rss_kib


def read_bytes(path):
    expect(os.path.exists(path), "missing artifact %s" % path)
    with open(path, "rb") as f:
        return f.read()


def run_timed(args, cwd):
    """Run one CLI invocation; return its wall-clock seconds."""
    begin = time.monotonic()
    proc = subprocess.run(args, cwd=cwd,
                          stdout=subprocess.DEVNULL,
                          stderr=subprocess.PIPE, text=True)
    wall = time.monotonic() - begin
    expect(proc.returncode == 0,
           "radcrit_cli exited with %d:\n%s"
           % (proc.returncode, proc.stderr))
    return wall


def main(argv):
    cli = None
    runs = 200000
    size = 512
    jobs = 4
    batch_runs = 4096
    budget_mib = 256
    warm_runs = 20000
    warm_factor = 1.5

    i = 1
    while i < len(argv):
        arg = argv[i]
        i += 1
        if arg == "--cli":
            cli = argv[i]
        elif arg == "--runs":
            runs = int(argv[i])
        elif arg == "--size":
            size = int(argv[i])
        elif arg == "--jobs":
            jobs = int(argv[i])
        elif arg == "--batch-runs":
            batch_runs = int(argv[i])
        elif arg == "--budget-mib":
            budget_mib = int(argv[i])
        elif arg == "--warm-runs":
            warm_runs = int(argv[i])
        elif arg == "--warm-factor":
            warm_factor = float(argv[i])
        else:
            print(__doc__, file=sys.stderr)
            return 2
        i += 1
    if cli is None:
        print(__doc__, file=sys.stderr)
        return 2
    cli = os.path.abspath(cli)
    expect(os.path.exists(cli),
           "radcrit_cli binary %s does not exist (build it first)"
           % cli)

    common = ["--runs=%d" % runs, "--size=%d" % size,
              "--jobs=%d" % jobs, "--seed=7", "--cache=cache"]
    budget_kib = budget_mib * 1024

    with tempfile.TemporaryDirectory() as sandbox:
        mat_kib = run_measured(
            [cli] + common + ["--csv=materialized.csv"], sandbox)
        stream_kib = run_measured(
            [cli] + common + ["--stream",
                              "--batch-runs=%d" % batch_runs,
                              "--csv=streamed.csv"], sandbox)

        mat_csv = read_bytes(
            os.path.join(sandbox, "materialized.csv"))
        stream_csv = read_bytes(
            os.path.join(sandbox, "streamed.csv"))
        expect(mat_csv == stream_csv,
               "streamed CSV differs from the materialized run "
               "(%d vs %d bytes)" % (len(stream_csv), len(mat_csv)))
        expect(len(mat_csv.splitlines()) == runs + 1,
               "CSV has %d data rows, expected %d"
               % (len(mat_csv.splitlines()) - 1, runs))

        expect(mat_kib > budget_kib,
               "materialized peak RSS %d KiB within the %d MiB "
               "budget — the campaign is too small to prove the "
               "streamed path bounds memory; raise --runs/--size"
               % (mat_kib, budget_mib))
        expect(stream_kib <= budget_kib,
               "streamed peak RSS %d KiB exceeds the %d MiB budget "
               "(materialized used %d KiB)"
               % (stream_kib, budget_mib, mat_kib))

        # --- Warm-hit cost. A smaller campaign (under the store's
        # single-pass validate cap) simulated once, then loaded
        # twice from the warm cache: materialized (one raw parse)
        # and streamed. The streamed hit must stay within
        # warm_factor of the raw load — the double-parse gate.
        warm = ["--runs=%d" % warm_runs, "--size=%d" % size,
                "--jobs=%d" % jobs, "--seed=9", "--cache=cache"]
        run_timed([cli] + warm + ["--csv=warm_ref.csv"], sandbox)
        raw_s = run_timed([cli] + warm + ["--csv=warm_raw.csv"],
                          sandbox)
        stream_s = run_timed(
            [cli] + warm + ["--stream",
                            "--batch-runs=%d" % batch_runs,
                            "--csv=warm_stream.csv"], sandbox)
        ref_csv = read_bytes(os.path.join(sandbox, "warm_ref.csv"))
        for name in ("warm_raw.csv", "warm_stream.csv"):
            expect(read_bytes(os.path.join(sandbox, name))
                   == ref_csv,
                   "%s differs from the simulating run's CSV"
                   % name)
        expect(stream_s <= warm_factor * raw_s + 0.25,
               "warm streamed hit took %.2f s, more than %.2fx "
               "the %.2f s materialized load — the streamed path "
               "is double-parsing the entry again"
               % (stream_s, warm_factor, raw_s))

    print("check_stream: OK: %d runs, CSV byte-identical, peak RSS "
          "streamed %d KiB <= %d MiB budget < materialized %d KiB; "
          "warm hit streamed %.2f s vs raw %.2f s (gate %.1fx)"
          % (runs, stream_kib, budget_mib, mat_kib, stream_s,
             raw_s, warm_factor))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
