#!/usr/bin/env python3
"""Regression tests for check_bench_json.py's failure modes.

Usage:
    test_check_bench_json.py <mode>

Modes:
    missing    bench exits 0 but writes no JSON; a stale file from
               a previous run is present and must NOT rescue the
               check (the vacuous-pass regression)
    truncated  bench writes a truncated JSON document
    schema     bench writes a well-formed but outdated schema-4
               document (no resilience block); the checker must
               reject it, not silently accept old producers

Each mode builds a sandbox with a fake bench binary, runs
check_bench_json.py against it, and requires a nonzero exit with
the matching diagnostic on stderr. Exits 0 when the checker
behaves, 1 otherwise.
"""

import os
import stat
import subprocess
import sys
import tempfile

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "check_bench_json.py")

STALE_JSON = """{
  "schema": 8,
  "bench": "fake_bench",
  "campaigns": 1,
  "jobs": 1,
  "runs": 4,
  "wall_ns": 4000,
  "cache_hits": 0,
  "cache_misses": 1,
  "ns_per_op": 1000,
  "runs_per_s": 1000000.0,
  "timings": {
    "wall_ns": 4000,
    "runs_per_s": 1000000.0,
    "pool_busy_ns": 3000,
    "pool_idle_ns": 1000,
    "pool_utilization": 0.75,
    "phase_ns": {
      "sample": 500,
      "classify": 500,
      "replay": 1500,
      "metrics": 500,
      "total": 3000
    }
  },
  "sharding": {
    "enabled": 0,
    "concurrent_campaigns": 0,
    "overlap_ns": 0,
    "prepass_wall_ns": 0,
    "io_threads": 0,
    "io_batches": 0,
    "io_busy_ns": 0,
    "io_queue_peak": 0
  },
  "resilience": {
    "retries": 0,
    "resumed_runs": 0,
    "watchdog_overdue": 0,
    "checkpoint_torn_records": 0,
    "store_quarantined": 0,
    "chaos_throws": 0,
    "chaos_stalls": 0,
    "chaos_corrupt_writes": 0
  },
  "memory": {
    "peak_rss_bytes": 20971520,
    "current_rss_bytes": 10485760,
    "stream_batches": 0,
    "batch_runs": 0
  },
  "stats": {
    "campaign.k40.dgemm.masked": {"kind": "counter", "value": 1},
    "campaign.k40.dgemm.sdc": {"kind": "counter", "value": 1},
    "campaign.k40.dgemm.crash": {"kind": "counter", "value": 1},
    "campaign.k40.dgemm.hang": {"kind": "counter", "value": 1}
  }
}
"""

# A document an old (pre-resilience) bench would emit.
SCHEMA4_JSON = STALE_JSON.replace('"schema": 8', '"schema": 4')
in_block = False
lines = []
for line in SCHEMA4_JSON.splitlines():
    if '"resilience"' in line:
        in_block = True
    if not in_block:
        lines.append(line)
    elif in_block and line == "  },":
        in_block = False
SCHEMA4_JSON = "\n".join(lines) + "\n"


def write_fake_bench(path, body):
    with open(path, "w") as f:
        f.write("#!/bin/sh\n" + body)
    os.chmod(path, os.stat(path).st_mode | stat.S_IXUSR)


def run_checker(cwd, bench):
    return subprocess.run(
        [sys.executable, CHECKER, bench],
        cwd=cwd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)


def expect(cond, msg, proc):
    if not cond:
        print("test_check_bench_json: FAIL: %s" % msg,
              file=sys.stderr)
        print("checker exit=%d\nstdout:\n%s\nstderr:\n%s"
              % (proc.returncode, proc.stdout, proc.stderr),
              file=sys.stderr)
        sys.exit(1)


def mode_missing(sandbox):
    """Bench writes nothing; stale JSON must not pass the check."""
    os.makedirs(os.path.join(sandbox, "bench_out"))
    with open(os.path.join(sandbox, "bench_out",
                           "fake_bench.json"), "w") as f:
        f.write(STALE_JSON)
    bench = os.path.join(sandbox, "fake_bench")
    write_fake_bench(bench, "exit 0\n")
    proc = run_checker(sandbox, bench)
    expect(proc.returncode != 0,
           "checker passed even though the bench wrote no JSON "
           "(validated a stale file)", proc)
    expect("missing output file" in proc.stderr,
           "diagnostic does not name the missing output file",
           proc)


def mode_truncated(sandbox):
    """Bench writes half a document; must fail as invalid JSON."""
    bench = os.path.join(sandbox, "fake_bench")
    write_fake_bench(
        bench,
        "mkdir -p bench_out\n"
        "printf '{\"schema\": 2, \"bench\": \"fake_b' "
        "> bench_out/fake_bench.json\n")
    proc = run_checker(sandbox, bench)
    expect(proc.returncode != 0,
           "checker passed on truncated JSON", proc)
    expect("truncated or not valid JSON" in proc.stderr,
           "diagnostic does not flag truncated/invalid JSON",
           proc)


def mode_schema(sandbox):
    """A schema-4 document (old producer) must be rejected."""
    bench = os.path.join(sandbox, "fake_bench")
    write_fake_bench(
        bench,
        "mkdir -p bench_out\n"
        "cat > bench_out/fake_bench.json <<'JSON'\n"
        + SCHEMA4_JSON + "JSON\n")
    proc = run_checker(sandbox, bench)
    expect(proc.returncode != 0,
           "checker accepted an outdated schema-4 document", proc)
    expect("schema must be 8" in proc.stderr,
           "diagnostic does not name the expected schema", proc)


MODES = {
    "missing": mode_missing,
    "truncated": mode_truncated,
    "schema": mode_schema,
}


def main(argv):
    if len(argv) != 2 or argv[1] not in MODES:
        print(__doc__, file=sys.stderr)
        return 2
    with tempfile.TemporaryDirectory() as sandbox:
        MODES[argv[1]](sandbox)
    print("test_check_bench_json: OK: %s" % argv[1])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
